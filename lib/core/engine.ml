(* The permission engine (PE, §VI-B).

   One engine instance guards one app.  It holds the app's reconciled
   manifest, answers allow/deny for every API call, tracks the stateful
   dimensions (ownership, rule budgets) in a store shared with the
   other apps' engines, enforces transactional call groups with
   rollback, translates virtual-topology calls, and vets read results
   for visibility.  [checker] packages all of it as the controller's
   pluggable [Api.checker]. *)

open Shield_openflow
open Shield_net
open Shield_controller

type t = {
  app_name : string;
  cookie : int;
  manifest : Perm.manifest;
  ownership : Ownership.t;
  vtopo : Vtopo.t option;
  record_state : bool;
      (** When false, approved flow-mods are not recorded in the
          ownership store: pure stateless checking, as the paper
          characterises the permission engine for its Figure-5
          microbenchmark. *)
  cache : Decision_cache.t option;
      (** Decision memoization over canonicalized call signatures;
          stateful entries are generation-gated on [ownership] (see
          docs/CACHING.md). *)
  env : Filter_eval.env;
  evals : (Attrs.t -> bool) option array;
      (** Per-token filter evaluators, indexed by {!Token.index} —
          filter and environment pre-bound so the hot path does no
          manifest scan or closure construction. *)
  automaton : Automaton.t option;
      (** With [~strategy:`Automaton], the decision DAG the [evals]
          slots delegate to; also serves {!check_batch}'s fast path. *)
  mutex : Mutex.t;  (** Guards stateful check/record sequences. *)
  mutable checks : int;
  mutable denials : int;
}

(* Manifest compilation ----------------------------------------------------- *)

let find_virt_members (manifest : Perm.manifest) =
  (* A virtual big switch is requested by a Virt_topo atom on
     visible_topology; its member set defaults to the switches of a
     Phys_topo atom on the same permission, else the whole network. *)
  match Perm.find manifest Token.Visible_topology with
  | None -> None
  | Some p ->
    let has_virt =
      Filter.fold_atoms
        (fun acc s ->
          acc || match s with Filter.Virt_topo _ -> true | _ -> false)
        false p.Perm.filter
    in
    if not has_virt then None
    else
      Some
        (Filter.fold_atoms
           (fun acc s ->
             match s with
             | Filter.Phys_topo { switches; _ } ->
               Filter.Int_set.union acc switches
             | _ -> acc)
           Filter.Int_set.empty p.Perm.filter)

(* Evaluation environment ---------------------------------------------------- *)

let env_of ~ownership ~cookie : Filter_eval.env =
  Dispatch.env_of_ownership ~ownership ~cookie

(** Build an engine for [app_name].  [ownership] must be shared across
    all engines of one deployment; [topo] enables virtual-topology
    translation when the manifest requests it.  Manifests containing
    unexpanded macros are rejected: reconciliation must run first. *)
let create ?topo ?(record_state = true) ?cache_size
    ?(strategy = `Interpreted) ~ownership ~app_name ~cookie
    (manifest : Perm.manifest) : t =
  (match Perm.macros manifest with
  | [] -> ()
  | ms ->
    invalid_arg
      (Printf.sprintf "engine: manifest of %s has unresolved macros: %s"
         app_name (String.concat ", " ms)));
  let vtopo =
    match (find_virt_members manifest, topo) with
    | Some members, Some topo -> Some (Vtopo.create ~members topo)
    | Some _, None ->
      invalid_arg
        (Printf.sprintf
           "engine: %s requests a virtual topology but no physical topology \
            was supplied"
           app_name)
    | None, _ -> None
  in
  let cache =
    match cache_size with
    | None -> None
    | Some max_entries ->
      Some
        (Decision_cache.create ~name:("engine:" ^ app_name) ~max_entries
           ~generation:(fun () -> Ownership.generation ownership)
           manifest)
  in
  let env = env_of ~ownership ~cookie in
  let evals = Array.make Token.count None in
  let automaton =
    match strategy with
    | `Interpreted ->
      List.iter
        (fun (p : Perm.t) ->
          let filter = p.Perm.filter in
          evals.(Token.index p.Perm.token) <-
            Some (fun attrs -> Filter_eval.eval env filter attrs))
        manifest;
      None
    | `Automaton ->
      (* One shared DAG; the per-token slots dispatch into it so the
         rest of the engine (cache, vtopo, recording, explanations) is
         strategy-agnostic. *)
      let a = Automaton.of_manifest ~env manifest in
      List.iter
        (fun (p : Perm.t) ->
          let token = p.Perm.token in
          evals.(Token.index token) <-
            Some (fun attrs -> Automaton.eval_token a token attrs))
        manifest;
      Some a
  in
  { app_name; cookie; manifest; ownership; vtopo; record_state; cache; env;
    evals; automaton; mutex = Mutex.create (); checks = 0; denials = 0 }

(* Token resolution --------------------------------------------------------- *)

(** Which token a call requires (see {!Dispatch.token_of_call};
    re-exported here because the engine is where most callers already
    look for it). *)
let token_of_call = Dispatch.token_of_call

(* Evaluation environment --------------------------------------------------- *)

let env t = t.env

(* Checking ------------------------------------------------------------------ *)

let is_stateful = function Api.Install_flow _ -> true | _ -> false

let record_state t (call : Api.call) =
  if t.record_state then
    match call with
    | Api.Install_flow (dpid, fm) ->
      Ownership.record t.ownership ~dpid fm ~cookie:t.cookie
    | _ -> ()

(** When a virtual topology is active, the app's entire view is the
    big switch: any call addressing a physical datapath directly is
    outside the abstraction and denied, whichever token it rides on. *)
let vtopo_confined t (attrs : Attrs.t) =
  match (t.vtopo, attrs.Attrs.dpid) with
  | Some vt, Some d -> d = vt.Vtopo.vdpid
  | _ -> true

let check_unlocked t (call : Api.call) : Api.decision =
  t.checks <- t.checks + 1;
  let deny why =
    t.denials <- t.denials + 1;
    Api.Deny why
  in
  if
    (* [Attrs.of_call] only when a virtual topology is actually active:
       the common physical deployment keeps the hot path free of it. *)
    match t.vtopo with
    | None -> false
    | Some _ -> not (vtopo_confined t (Attrs.of_call call))
  then deny "virtual topology: physical switches are not addressable"
  else
  match token_of_call call with
  | None -> Api.Allow
  | Some token -> (
    match t.evals.(Token.index token) with
    | None -> deny (Printf.sprintf "missing permission %s" (Token.to_string token))
    | Some eval ->
      let pass =
        match t.cache with
        | None -> eval (Attrs.of_call call)
        | Some cache -> Decision_cache.check cache ~token ~call ~eval
      in
      if pass then begin
        record_state t call;
        Api.Allow
      end
      else
        (* Keep the hot deny path allocation-light: permission checking
           sits on the control-plane critical path (§IX-B2), and the
           runtime's audit layer already records the offending call. *)
        deny ("permission filter rejects call: " ^ Token.to_string token))

(** Check one call; approved flow-mods update the ownership store.  The
    lock serializes the check-then-record sequence of stateful calls;
    with [record_state:false] there is no record step to keep atomic,
    so pure checking runs lock-free. *)
let check t call =
  if t.record_state && is_stateful call then begin
    Mutex.lock t.mutex;
    let d = check_unlocked t call in
    Mutex.unlock t.mutex;
    d
  end
  else check_unlocked t call

(** Batched checking: one verdict per call, in order, each decided as
    {!check} would at that position.  When the automaton alone decides
    — [`Automaton] strategy with no decision cache, no virtual
    topology, and no state recording — the whole array goes through
    {!Automaton.check_batch} (shared scratch, coalesced repeats);
    otherwise each element takes the ordinary {!check} path, so the
    batch is merely a loop and stays bit-for-bit compatible. *)
let check_batch t (calls : Api.call array) : Api.decision array =
  match t.automaton with
  | Some a
    when (not t.record_state) && t.vtopo = None && t.cache = None ->
    let out = Automaton.check_batch a calls in
    t.checks <- t.checks + Array.length calls;
    Array.iter
      (function Api.Deny _ -> t.denials <- t.denials + 1 | Api.Allow -> ())
      out;
    out
  | _ -> Array.map (fun call -> check t call) calls

(** Transactional check (§VI-B2): every call in the group must pass;
    state updates from earlier calls in the group are visible to later
    ones and roll back entirely when any call is denied. *)
let check_transaction t (calls : Api.call list) :
    (unit, int * string) Stdlib.result =
  Mutex.lock t.mutex;
  let snap = Ownership.snapshot t.ownership in
  let rec go i = function
    | [] -> Ok ()
    | call :: rest -> (
      match check_unlocked t call with
      | Api.Allow -> go (i + 1) rest
      | Api.Deny why ->
        Ownership.restore t.ownership snap;
        Error (i, why))
  in
  let r = go 0 calls in
  Mutex.unlock t.mutex;
  r

(* Explained checking --------------------------------------------------------

   Same decision procedure as [check_unlocked] — same counters, same
   cache consultation, same state recording, same [Deny] messages — but
   additionally reporting provenance: which cache level served the
   decision and which token/filter clause made it.  Kept separate so
   the plain hot path stays allocation-light. *)

let check_explained_unlocked t (call : Api.call) :
    Api.decision * Api.check_info =
  t.checks <- t.checks + 1;
  let deny why =
    t.denials <- t.denials + 1;
    Api.Deny why
  in
  let info ?explain cache = { Api.cache; explain } in
  if
    match t.vtopo with
    | None -> false
    | Some _ -> not (vtopo_confined t (Attrs.of_call call))
  then
    ( deny "virtual topology: physical switches are not addressable",
      info
        ~explain:
          "virtual-topology confinement: the call addresses a physical \
           datapath outside the app's big-switch view"
        Api.Uncached )
  else
  match token_of_call call with
  | None ->
    ( Api.Allow,
      info ~explain:"no permission token governs this call" Api.Uncached )
  | Some token -> (
    let tok = Token.to_string token in
    match t.evals.(Token.index token) with
    | None ->
      ( deny (Printf.sprintf "missing permission %s" tok),
        info
          ~explain:(Printf.sprintf "token %s: not granted by the manifest" tok)
          Api.Uncached )
    | Some eval ->
      let pass, cache_outcome =
        match t.cache with
        | None -> (eval (Attrs.of_call call), Api.Uncached)
        | Some cache ->
          let pass, o = Decision_cache.check_outcome cache ~token ~call ~eval in
          (pass, Decision_cache.to_cache_outcome o)
      in
      (* The clause-level account re-evaluates the filter.
         [Filter_eval.explain] always agrees with [eval], and the cache
         never disagrees with [eval] (docs/CACHING.md), so the verdict
         reported is the verdict served. *)
      let filter =
        match Perm.find t.manifest token with
        | Some p -> p.Perm.filter
        | None -> Filter.False
      in
      let _, why = Filter_eval.explain t.env filter (Attrs.of_call call) in
      let explain = Printf.sprintf "token %s: %s" tok why in
      if pass then begin
        record_state t call;
        (Api.Allow, info ~explain cache_outcome)
      end
      else
        ( deny ("permission filter rejects call: " ^ tok),
          info ~explain cache_outcome ))

(** {!check} with provenance: the same decision (bit-for-bit, including
    ownership recording and counters) plus the cache outcome and a
    prose account of the deciding token and filter clause. *)
let check_explained t call =
  if t.record_state && is_stateful call then begin
    Mutex.lock t.mutex;
    let d = check_explained_unlocked t call in
    Mutex.unlock t.mutex;
    d
  end
  else check_explained_unlocked t call

(* Virtual-topology call translation ---------------------------------------- *)

let rewrite t (call : Api.call) : Api.call list =
  match t.vtopo with
  | None -> [ call ]
  | Some vt -> (
    let vdpid = vt.Vtopo.vdpid in
    match call with
    | Api.Install_flow (d, fm) when d = vdpid ->
      List.map
        (fun (pd, pfm) -> Api.Install_flow (pd, pfm))
        (Vtopo.translate_flow_mod vt fm)
    | Api.Read_flow_table { dpid = Some d; pattern } when d = vdpid ->
      List.map
        (fun m -> Api.Read_flow_table { dpid = Some m; pattern })
        (Filter.Int_set.elements vt.Vtopo.members)
    | Api.Read_flow_table { dpid = None; pattern } ->
      (* Whole-view read = the member switches. *)
      List.map
        (fun m -> Api.Read_flow_table { dpid = Some m; pattern })
        (Filter.Int_set.elements vt.Vtopo.members)
    | Api.Read_stats req
      when req.Stats.dpid_filter = Some vdpid || req.Stats.dpid_filter = None ->
      List.map
        (fun m -> Api.Read_stats { req with Stats.dpid_filter = Some m })
        (Filter.Int_set.elements vt.Vtopo.members)
    | Api.Send_packet_out ({ dpid = d; port; _ } as po) when d = vdpid -> (
      match Vtopo.endpoint_of_vport vt port with
      | Some ep ->
        [ Api.Send_packet_out
            { po with dpid = ep.Topology.dpid; port = ep.Topology.port } ]
      | None -> [])
    | _ -> [ call ])

let merge_results (call : Api.call) (results : Api.result list) : Api.result =
  match results with
  | [] -> Api.Failed "virtual-topology translation produced no calls"
  | [ r ] -> r
  | rs -> (
    match List.find_opt (function Api.Failed _ | Api.Denied _ -> true | _ -> false) rs with
    | Some bad -> bad
    | None -> (
      match call with
      | Api.Read_flow_table _ ->
        Api.Flow_entries
          (List.concat_map
             (function Api.Flow_entries l -> l | _ -> [])
             rs)
      | Api.Read_stats _ ->
        let flow, port, sw =
          List.fold_left
            (fun (f, p, s) -> function
              | Api.Stats_result (Stats.Flow_stats l) -> (f @ l, p, s)
              | Api.Stats_result (Stats.Port_stats l) -> (f, p @ l, s)
              | Api.Stats_result (Stats.Switch_stats l) -> (f, p, s @ l)
              | _ -> (f, p, s))
            ([], [], []) rs
        in
        if flow <> [] then Api.Stats_result (Stats.Flow_stats flow)
        else if port <> [] then Api.Stats_result (Stats.Port_stats port)
        else Api.Stats_result (Stats.Switch_stats sw)
      | _ -> List.hd rs))

(* Result vetting (visibility filtering) ------------------------------------ *)

let filter_for t token =
  match Perm.find t.manifest token with
  | Some p -> p.Perm.filter
  | None -> Filter.False

let entry_visible t expr ~dpid (fs : Stats.flow_stat) =
  let attrs =
    { (Attrs.base Attrs.K_read_flow_table) with
      Attrs.match_ = Some fs.Stats.match_;
      priority = Some fs.Stats.priority;
      dpid = Some dpid;
      cookie = Some fs.Stats.cookie }
  in
  Filter_eval.eval (env t) expr attrs

let switch_visible t expr ~kind d =
  Filter_eval.eval (env t) expr { (Attrs.base kind) with Attrs.dpid = Some d }

let vet_flow_entries t expr l =
  let vetted =
    List.filter_map
      (fun (dpid, entries) ->
        if not (switch_visible t expr ~kind:Attrs.K_read_flow_table dpid) then
          None
        else
          match List.filter (entry_visible t expr ~dpid) entries with
          | [] -> None
          | kept -> Some (dpid, kept))
      l
  in
  match t.vtopo with
  | Some vt when vetted <> [] -> Vtopo.aggregate_flow_stats vt vetted
  | _ -> vetted

let vet_topology t expr (view : Api.topology_view) : Api.topology_view =
  match t.vtopo with
  | Some vt -> Vtopo.translate_topology_view vt view
  | None ->
    let vis d = switch_visible t expr ~kind:Attrs.K_read_topology d in
    { Api.switches = List.filter vis view.Api.switches;
      links =
        List.filter
          (fun ((a : Topology.endpoint), (b : Topology.endpoint)) ->
            vis a.Topology.dpid && vis b.Topology.dpid)
          view.Api.links;
      hosts =
        List.filter
          (fun (h : Topology.host) -> vis h.Topology.attachment.Topology.dpid)
          view.Api.hosts }

let vet_stats t expr (reply : Stats.reply) : Stats.reply =
  let vis d = switch_visible t expr ~kind:Attrs.K_read_stats d in
  let vetted =
    match reply with
    | Stats.Flow_stats l ->
      Stats.Flow_stats
        (List.filter_map
           (fun (d, entries) ->
             if not (vis d) then None
             else Some (d, List.filter (entry_visible t expr ~dpid:d) entries))
           l)
    | Stats.Port_stats l -> Stats.Port_stats (List.filter (fun (d, _) -> vis d) l)
    | Stats.Switch_stats l ->
      Stats.Switch_stats (List.filter (fun (s : Stats.switch_stat) -> vis s.Stats.dpid) l)
  in
  match t.vtopo with
  | Some vt -> Vtopo.aggregate_stats vt vetted
  | None -> vetted

let vet_result t (call : Api.call) (result : Api.result) : Api.result =
  match (call, result) with
  | Api.Read_flow_table _, Api.Flow_entries l ->
    Api.Flow_entries (vet_flow_entries t (filter_for t Token.Read_flow_table) l)
  | Api.Read_topology, Api.Topology_of view ->
    Api.Topology_of (vet_topology t (filter_for t Token.Visible_topology) view)
  | Api.Read_stats _, Api.Stats_result reply ->
    Api.Stats_result (vet_stats t (filter_for t Token.Read_statistics) reply)
  | _ -> result

(* Packaging ----------------------------------------------------------------- *)

(** React to controller state changes: a switch-expired rule leaves the
    ownership store so OWN_FLOWS / MAX_RULE_COUNT reflect reality. *)
let observe t (change : Api.state_change) =
  match change with
  | Api.Flow_expired { dpid; match_; cookie } ->
    Ownership.forget t.ownership ~dpid ~match_ ~cookie

(** Load-time capability test (§VIII-B): is the token behind the
    capability granted at all, whatever its filters? *)
let granted t (cap : Api.capability) : bool =
  let has tok = Perm.grants_token t.manifest tok in
  match cap with
  | Api.Cap_flow_write -> has Token.Insert_flow || has Token.Delete_flow
  | Api.Cap_flow_read -> has Token.Read_flow_table
  | Api.Cap_topology_read -> has Token.Visible_topology
  | Api.Cap_topology_write -> has Token.Modify_topology
  | Api.Cap_stats -> has Token.Read_statistics
  | Api.Cap_packet_out -> has Token.Send_pkt_out
  | Api.Cap_payload -> has Token.Read_payload
  | Api.Cap_host_network -> has Token.Host_network
  | Api.Cap_file_system -> has Token.File_system
  | Api.Cap_process -> has Token.Process_runtime

(** The engine as a controller-pluggable checker. *)
let checker (t : t) : Api.checker =
  { Api.check = (fun call -> check t call);
    check_batch = Some (fun calls -> check_batch t calls);
    check_transaction = (fun calls -> check_transaction t calls);
    rewrite = (fun call -> rewrite t call);
    combine = (fun call results -> merge_results call results);
    vet_result = (fun call result -> vet_result t call result);
    observe = (fun change -> observe t change);
    granted = (fun cap -> granted t cap);
    explain = Some (fun call -> check_explained t call);
    snapshot = None }

let stats t = (t.checks, t.denials)

let cache_stats t = Option.map Decision_cache.stats t.cache

let automaton_stats t = Option.map Automaton.build_stats t.automaton

let reset_stats t =
  t.checks <- 0;
  t.denials <- 0
