(* Normal forms over filter expressions.

   Algorithm 1 (§V-B1) compares Filter A against Filter B by putting A
   in conjunctive normal form and B in disjunctive normal form.  Both
   forms are represented here as clause lists over literals (possibly
   negated singletons).

   Representation conventions:
   - CNF: the list is a conjunction of clauses, each clause a
     disjunction of literals.  [[]]-free empty list = True; a list
     containing an empty clause contains False.
   - DNF: dual — empty list = False; an empty clause = True.

   Distribution can explode exponentially; conversion raises
   [Too_large] past [max_clauses] (clause count) or [max_width]
   (literals per clause) and callers fall back to a conservative
   answer.

   Inputs may be adversarial (untrusted manifests, docs/VETTING.md), so
   the conversion is hardened: [to_nnf] and the distribution walk are
   CPS / tail-recursive (a 100k-deep filter cannot overflow the stack),
   and [cross] guards *while building* the product — the worst-case
   |xs|·|ys| intermediate of a naive concat_map is never materialized;
   at most [max_clauses] merged clauses exist when [Too_large] fires.
   Clause allocations tick the ambient {!Budget}. *)

type literal = { positive : bool; atom : Filter.singleton }
type clause = literal list

exception Too_large

let pos atom = { positive = true; atom }
let negl atom = { positive = false; atom }

let pp_literal ppf l =
  if l.positive then Filter.pp_singleton ppf l.atom
  else Fmt.pf ppf "NOT %a" Filter.pp_singleton l.atom

(* Negation normal form with explicit polarity at the leaves. *)
type nnf =
  | N_true
  | N_false
  | N_lit of literal
  | N_and of nnf * nnf
  | N_or of nnf * nnf

(* CPS so every call is a tail call: depth-bombed inputs spend heap
   (continuation closures), not stack. *)
let to_nnf ~negated (e : Filter.expr) : nnf =
  let rec go e negated k =
    Budget.step ();
    match e with
    | Filter.True -> k (if negated then N_false else N_true)
    | Filter.False -> k (if negated then N_true else N_false)
    | Filter.Atom a -> k (N_lit (if negated then negl a else pos a))
    | Filter.Not e -> go e (not negated) k
    | Filter.And (a, b) ->
      if negated then go a true (fun na -> go b true (fun nb -> k (N_or (na, nb))))
      else go a false (fun na -> go b false (fun nb -> k (N_and (na, nb))))
    | Filter.Or (a, b) ->
      if negated then
        go a true (fun na -> go b true (fun nb -> k (N_and (na, nb))))
      else go a false (fun na -> go b false (fun nb -> k (N_or (na, nb))))
  in
  go e negated Fun.id

(** Default cap on literals per merged clause.  Width explosions are
    the dual of clause-count explosions: a single 100k-literal clause
    is as hostile as 100k clauses. *)
let default_max_width = 1_024

let guard ~max_clauses clauses =
  if List.length clauses > max_clauses then raise Too_large else clauses

(* Cross product of clause lists: every pairing merged into one clause.
   The guard is incremental — [Too_large] fires the moment the product
   passes [max_clauses] merged clauses or [max_width] literals in one
   clause, so the full |xs|·|ys| product is never allocated. *)
let cross ~max_clauses ~max_width xs ys =
  let ys = List.map (fun y -> (y, List.length y)) ys in
  let count = ref 0 in
  let acc = ref [] in
  List.iter
    (fun x ->
      let wx = List.length x in
      List.iter
        (fun (y, wy) ->
          incr count;
          if !count > max_clauses then raise Too_large;
          if wx + wy > max_width then raise Too_large;
          Budget.alloc_clauses 1;
          acc := (x @ y) :: !acc)
        ys)
    xs;
  List.rev !acc

(* Distribution, also CPS: the nnf tree mirrors the input depth. *)
let cnf_uncached ~max_clauses ~max_width (e : Filter.expr) : clause list =
  let rec go n k =
    Budget.step ();
    match n with
    | N_true -> k []
    | N_false -> k [ [] ]
    | N_lit l -> k [ [ l ] ]
    | N_and (a, b) ->
      go a (fun ca -> go b (fun cb -> k (guard ~max_clauses (ca @ cb))))
    | N_or (a, b) ->
      go a (fun ca -> go b (fun cb -> k (cross ~max_clauses ~max_width ca cb)))
  in
  go (to_nnf ~negated:false e) Fun.id

let dnf_uncached ~max_clauses ~max_width (e : Filter.expr) : clause list =
  let rec go n k =
    Budget.step ();
    match n with
    | N_true -> k [ [] ]
    | N_false -> k []
    | N_lit l -> k [ [ l ] ]
    | N_or (a, b) ->
      go a (fun ca -> go b (fun cb -> k (guard ~max_clauses (ca @ cb))))
    | N_and (a, b) ->
      go a (fun ca -> go b (fun cb -> k (cross ~max_clauses ~max_width ca cb)))
  in
  go (to_nnf ~negated:false e) Fun.id

(* Memoization ------------------------------------------------------------- *)

(* Reconciliation answers many inclusion queries over policy sets that
   share subterms, and each query re-normalises both sides
   (Algorithm 1); memoizing the conversions — including the Too_large
   blow-ups, which are the expensive outcomes — makes repeated
   normal-form work a table lookup.  Expressions are immutable and
   compared structurally, so memoization cannot change any result.
   Tables are bounded (flushed when full) and guarded by a mutex:
   reconciliation may run from several domains.

   Oversized expressions bypass the table: [Hashtbl]'s structural
   comparison walks colliding keys recursively, so parking a depth bomb
   in a bucket would re-import the stack hazard the CPS conversion just
   removed.  Bypasses are counted in the stats. *)

module M = Shield_controller.Metrics

type converted = Converted of clause list | Blew_up

let memo_max_entries = 8192

(** Expressions larger than this (node count) are converted fresh each
    time instead of being memo keys. *)
let memo_max_expr_size = 16_384

let memo_mutex = Mutex.create ()

let cnf_memo : (Filter.expr * int * int, converted) Hashtbl.t = Hashtbl.create 256
let dnf_memo : (Filter.expr * int * int, converted) Hashtbl.t = Hashtbl.create 256

let memo_counters = ref M.zero_cache_stats
let () = M.register_cache "nf-memo" (fun () -> !memo_counters)

(** Drop both memo tables (counters are kept). *)
let clear_memo () =
  Mutex.lock memo_mutex;
  Hashtbl.reset cnf_memo;
  Hashtbl.reset dnf_memo;
  Mutex.unlock memo_mutex

let memo_stats () = !memo_counters

let memoized table ~max_clauses ~max_width convert (e : Filter.expr) :
    clause list =
  if Filter.size e > memo_max_expr_size then begin
    Mutex.lock memo_mutex;
    memo_counters :=
      { !memo_counters with M.bypasses = !memo_counters.M.bypasses + 1 };
    Mutex.unlock memo_mutex;
    convert ~max_clauses ~max_width e
  end
  else begin
    let key = (e, max_clauses, max_width) in
    Mutex.lock memo_mutex;
    let cached = Hashtbl.find_opt table key in
    (match cached with
    | Some _ ->
      memo_counters := { !memo_counters with M.hits = !memo_counters.M.hits + 1 }
    | None -> ());
    Mutex.unlock memo_mutex;
    match cached with
    | Some (Converted clauses) -> clauses
    | Some Blew_up -> raise Too_large
    | None ->
      let outcome =
        match convert ~max_clauses ~max_width e with
        | clauses -> Converted clauses
        | exception Too_large -> Blew_up
      in
      Mutex.lock memo_mutex;
      memo_counters :=
        { !memo_counters with M.misses = !memo_counters.M.misses + 1 };
      if Hashtbl.length table >= memo_max_entries then begin
        memo_counters :=
          { !memo_counters with
            M.evictions = !memo_counters.M.evictions + Hashtbl.length table };
        Hashtbl.reset table
      end;
      Hashtbl.replace table key outcome;
      Mutex.unlock memo_mutex;
      (match outcome with Converted clauses -> clauses | Blew_up -> raise Too_large)
  end

(** CNF clauses of [e].  [[]] = True, a member [[]] = False clause.
    Memoized on [(e, max_clauses, max_width)], including [Too_large]
    outcomes. *)
let cnf ?(max_clauses = 4096) ?(max_width = default_max_width)
    (e : Filter.expr) : clause list =
  memoized cnf_memo ~max_clauses ~max_width cnf_uncached e

(** DNF clauses of [e].  [] = False, a member [] = True clause.
    Memoized like {!cnf}. *)
let dnf ?(max_clauses = 4096) ?(max_width = default_max_width)
    (e : Filter.expr) : clause list =
  memoized dnf_memo ~max_clauses ~max_width dnf_uncached e

(** Rebuild a filter expression from CNF clauses (for testing and for
    normalisation round-trips). *)
let expr_of_cnf (clauses : clause list) : Filter.expr =
  let lit l =
    if l.positive then Filter.Atom l.atom else Filter.neg (Filter.Atom l.atom)
  in
  Filter.conj_list
    (List.map (fun c -> Filter.disj_list (List.map lit c)) clauses)

let expr_of_dnf (clauses : clause list) : Filter.expr =
  let lit l =
    if l.positive then Filter.Atom l.atom else Filter.neg (Filter.Atom l.atom)
  in
  Filter.disj_list
    (List.map (fun c -> Filter.conj_list (List.map lit c)) clauses)
