(* Normal forms over filter expressions.

   Algorithm 1 (§V-B1) compares Filter A against Filter B by putting A
   in conjunctive normal form and B in disjunctive normal form.  Both
   forms are represented here as clause lists over literals (possibly
   negated singletons).

   Representation conventions:
   - CNF: the list is a conjunction of clauses, each clause a
     disjunction of literals.  [[]]-free empty list = True; a list
     containing an empty clause contains False.
   - DNF: dual — empty list = False; an empty clause = True.

   Distribution can explode exponentially; conversion raises
   [Too_large] past [max_clauses] and callers fall back to a
   conservative answer. *)

type literal = { positive : bool; atom : Filter.singleton }
type clause = literal list

exception Too_large

let pos atom = { positive = true; atom }
let negl atom = { positive = false; atom }

let pp_literal ppf l =
  if l.positive then Filter.pp_singleton ppf l.atom
  else Fmt.pf ppf "NOT %a" Filter.pp_singleton l.atom

(* Negation normal form with explicit polarity at the leaves. *)
type nnf =
  | N_true
  | N_false
  | N_lit of literal
  | N_and of nnf * nnf
  | N_or of nnf * nnf

let rec to_nnf ~negated (e : Filter.expr) : nnf =
  match e with
  | Filter.True -> if negated then N_false else N_true
  | Filter.False -> if negated then N_true else N_false
  | Filter.Atom a -> N_lit (if negated then negl a else pos a)
  | Filter.Not e -> to_nnf ~negated:(not negated) e
  | Filter.And (a, b) ->
    if negated then N_or (to_nnf ~negated a, to_nnf ~negated b)
    else N_and (to_nnf ~negated a, to_nnf ~negated b)
  | Filter.Or (a, b) ->
    if negated then N_and (to_nnf ~negated a, to_nnf ~negated b)
    else N_or (to_nnf ~negated a, to_nnf ~negated b)

let guard ~max_clauses clauses =
  if List.length clauses > max_clauses then raise Too_large else clauses

(* Cross product of clause lists: every pairing merged into one clause. *)
let cross ~max_clauses xs ys =
  guard ~max_clauses
    (List.concat_map (fun x -> List.map (fun y -> x @ y) ys) xs)

let cnf_uncached ~max_clauses (e : Filter.expr) : clause list =
  let rec go = function
    | N_true -> []
    | N_false -> [ [] ]
    | N_lit l -> [ [ l ] ]
    | N_and (a, b) -> guard ~max_clauses (go a @ go b)
    | N_or (a, b) -> cross ~max_clauses (go a) (go b)
  in
  go (to_nnf ~negated:false e)

let dnf_uncached ~max_clauses (e : Filter.expr) : clause list =
  let rec go = function
    | N_true -> [ [] ]
    | N_false -> []
    | N_lit l -> [ [ l ] ]
    | N_or (a, b) -> guard ~max_clauses (go a @ go b)
    | N_and (a, b) -> cross ~max_clauses (go a) (go b)
  in
  go (to_nnf ~negated:false e)

(* Memoization ------------------------------------------------------------- *)

(* Reconciliation answers many inclusion queries over policy sets that
   share subterms, and each query re-normalises both sides
   (Algorithm 1); memoizing the conversions — including the Too_large
   blow-ups, which are the expensive outcomes — makes repeated
   normal-form work a table lookup.  Expressions are immutable and
   compared structurally, so memoization cannot change any result.
   Tables are bounded (flushed when full) and guarded by a mutex:
   reconciliation may run from several domains. *)

module M = Shield_controller.Metrics

type converted = Converted of clause list | Blew_up

let memo_max_entries = 8192
let memo_mutex = Mutex.create ()

let cnf_memo : (Filter.expr * int, converted) Hashtbl.t = Hashtbl.create 256
let dnf_memo : (Filter.expr * int, converted) Hashtbl.t = Hashtbl.create 256

let memo_counters = ref M.zero_cache_stats
let () = M.register_cache "nf-memo" (fun () -> !memo_counters)

(** Drop both memo tables (counters are kept). *)
let clear_memo () =
  Mutex.lock memo_mutex;
  Hashtbl.reset cnf_memo;
  Hashtbl.reset dnf_memo;
  Mutex.unlock memo_mutex

let memo_stats () = !memo_counters

let memoized table ~max_clauses convert (e : Filter.expr) : clause list =
  let key = (e, max_clauses) in
  Mutex.lock memo_mutex;
  let cached = Hashtbl.find_opt table key in
  (match cached with
  | Some _ -> memo_counters := { !memo_counters with M.hits = !memo_counters.M.hits + 1 }
  | None -> ());
  Mutex.unlock memo_mutex;
  match cached with
  | Some (Converted clauses) -> clauses
  | Some Blew_up -> raise Too_large
  | None ->
    let outcome =
      match convert ~max_clauses e with
      | clauses -> Converted clauses
      | exception Too_large -> Blew_up
    in
    Mutex.lock memo_mutex;
    memo_counters := { !memo_counters with M.misses = !memo_counters.M.misses + 1 };
    if Hashtbl.length table >= memo_max_entries then begin
      memo_counters :=
        { !memo_counters with
          M.evictions = !memo_counters.M.evictions + Hashtbl.length table };
      Hashtbl.reset table
    end;
    Hashtbl.replace table key outcome;
    Mutex.unlock memo_mutex;
    (match outcome with Converted clauses -> clauses | Blew_up -> raise Too_large)

(** CNF clauses of [e].  [[]] = True, a member [[]] = False clause.
    Memoized on [(e, max_clauses)], including [Too_large] outcomes. *)
let cnf ?(max_clauses = 4096) (e : Filter.expr) : clause list =
  memoized cnf_memo ~max_clauses cnf_uncached e

(** DNF clauses of [e].  [] = False, a member [] = True clause.
    Memoized like {!cnf}. *)
let dnf ?(max_clauses = 4096) (e : Filter.expr) : clause list =
  memoized dnf_memo ~max_clauses dnf_uncached e

(** Rebuild a filter expression from CNF clauses (for testing and for
    normalisation round-trips). *)
let expr_of_cnf (clauses : clause list) : Filter.expr =
  let lit l =
    if l.positive then Filter.Atom l.atom else Filter.neg (Filter.Atom l.atom)
  in
  Filter.conj_list
    (List.map (fun c -> Filter.disj_list (List.map lit c)) clauses)

let expr_of_dnf (clauses : clause list) : Filter.expr =
  let lit l =
    if l.positive then Filter.Atom l.atom else Filter.neg (Filter.Atom l.atom)
  in
  Filter.disj_list
    (List.map (fun c -> Filter.conj_list (List.map lit c)) clauses)
