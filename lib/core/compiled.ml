(* Closure-compiled permission checking.

   The paper's permission engine "compiles the permission manifest into
   the runtime checking code" when the app is loaded (§III).  This
   module is that compilation strategy: each filter expression is
   translated once into a closure tree (constant parts — masks,
   defaults, field selectors — pre-resolved), and the manifest into a
   token-indexed array, so the per-call work is pure closure
   application with no AST dispatch or association-list lookup.

   [Engine] interprets the AST per call; benchmarks compare the two
   (bench/main.exe ablation-compile).  Semantics are identical —
   property-tested in test/test_compiled.ml. *)

type checker_fn = Filter_eval.env -> Attrs.t -> bool

let compile_singleton (s : Filter.singleton) : checker_fn =
  match s with
  | Filter.Pred { field; value; mask } ->
    (* Pre-resolve the mask/value so the hot path is a compare. *)
    let fmask = Option.value mask ~default:0xFFFFFFFFl in
    let masked_value =
      match value with
      | Filter.V_ip ip -> Int32.logand ip fmask
      | Filter.V_int _ -> 0l
    in
    fun _env attrs ->
      if not (Attrs.has_header_dimension attrs) then true
      else begin
        match Attrs.field_value attrs field with
        | Attrs.No_dimension -> true
        | Attrs.Unconstrained -> false
        | Attrs.Ip_range (addr, call_mask) -> (
          match value with
          | Filter.V_ip _ ->
            Int32.logand fmask (Int32.lognot call_mask) = 0l
            && Int32.logand addr fmask = masked_value
          | Filter.V_int _ -> false)
        | Attrs.Exact_int i -> (
          match value with
          | Filter.V_int v -> i = v
          | Filter.V_ip ip -> Int32.of_int i = ip)
      end
  | _ ->
    (* The remaining singletons have no meaningful constant folding;
       delegate to the interpreter's primitive. *)
    fun env attrs -> Filter_eval.eval_singleton env s attrs

let rec compile (e : Filter.expr) : checker_fn =
  match e with
  | Filter.True -> fun _ _ -> true
  | Filter.False -> fun _ _ -> false
  | Filter.Atom s -> compile_singleton s
  | Filter.And (a, b) ->
    let ca = compile a and cb = compile b in
    fun env attrs -> ca env attrs && cb env attrs
  | Filter.Or (a, b) ->
    let ca = compile a and cb = compile b in
    fun env attrs -> ca env attrs || cb env attrs
  | Filter.Not a ->
    let ca = compile a in
    fun env attrs -> not (ca env attrs)

type t = {
  slots : (Attrs.t -> bool) option array;
      (** Indexed by {!Token.index}; the environment is pre-bound so
          the hot path is pure closure application. *)
  exprs : Filter.expr option array;
      (** The source filters, kept for {!check_explained} — the
          compiled closures cannot name the clause that decided. *)
  env : Filter_eval.env;
  cache : Decision_cache.t option;
}

(** Compile [manifest] once.  [env] supplies the stateful dimensions
    (defaults to the pure environment for stateless checking).
    [cache_size] additionally memoizes decisions in a
    {!Decision_cache}; [generation] must then be the mutation counter
    of the state behind [env] (it defaults to a constant, which is
    sound only for the pure environment). *)
let of_manifest ?(env = Filter_eval.pure_env) ?cache_size ?generation
    (manifest : Perm.manifest) : t =
  let slots = Array.make Token.count None in
  let exprs = Array.make Token.count None in
  List.iter
    (fun (p : Perm.t) ->
      let fn = compile p.Perm.filter in
      slots.(Token.index p.Perm.token) <- Some (fun attrs -> fn env attrs);
      exprs.(Token.index p.Perm.token) <- Some p.Perm.filter)
    manifest;
  let cache =
    match cache_size with
    | None -> None
    | Some max_entries ->
      Some (Decision_cache.create ~name:"compiled" ~max_entries ?generation manifest)
  in
  { slots; exprs; env; cache }

(** Check a call: token slot lookup + compiled closure application
    (memoized when a decision cache is attached). *)
let check (t : t) (call : Shield_controller.Api.call) :
    Shield_controller.Api.decision =
  match Dispatch.token_of_call call with
  | None -> Shield_controller.Api.Allow
  | Some token -> (
    match t.slots.(Token.index token) with
    | None ->
      Shield_controller.Api.Deny
        ("missing permission " ^ Token.to_string token)
    | Some eval ->
      let pass =
        match t.cache with
        | None -> eval (Attrs.of_call call)
        | Some cache -> Decision_cache.check cache ~token ~call ~eval
      in
      if pass then Shield_controller.Api.Allow
      else Shield_controller.Api.Deny "filter rejects call")

(** {!check} with provenance: the identical decision plus the cache
    outcome and the deciding clause of the *source* filter (the
    compiled closures are semantically equal to it — property-tested in
    test/test_compiled.ml — so the interpreted explanation accounts for
    the compiled verdict). *)
let check_explained (t : t) (call : Shield_controller.Api.call) :
    Shield_controller.Api.decision * Shield_controller.Api.check_info =
  let module Api = Shield_controller.Api in
  let info ?explain cache = { Api.cache; explain } in
  match Dispatch.token_of_call call with
  | None ->
    (Api.Allow, info ~explain:"no permission token governs this call" Api.Uncached)
  | Some token -> (
    let tok = Token.to_string token in
    match t.slots.(Token.index token) with
    | None ->
      ( Api.Deny ("missing permission " ^ tok),
        info
          ~explain:(Printf.sprintf "token %s: not granted by the manifest" tok)
          Api.Uncached )
    | Some eval ->
      let pass, cache_outcome =
        match t.cache with
        | None -> (eval (Attrs.of_call call), Api.Uncached)
        | Some cache ->
          let pass, o = Decision_cache.check_outcome cache ~token ~call ~eval in
          (pass, Decision_cache.to_cache_outcome o)
      in
      let expr =
        match t.exprs.(Token.index token) with
        | Some e -> e
        | None -> Filter.False (* unreachable: slots and exprs agree *)
      in
      let _, why = Filter_eval.explain t.env expr (Attrs.of_call call) in
      let explain = Printf.sprintf "token %s: %s" tok why in
      if pass then (Api.Allow, info ~explain cache_outcome)
      else (Api.Deny "filter rejects call", info ~explain cache_outcome))

let cache_stats t = Option.map Decision_cache.stats t.cache
