(* Recursive-descent parser for the security-policy language
   (paper Appendix B).

     expr        := binding | constraint
     binding     := LET var = { perm_expr } | LET var = APP app_name
                  | LET var = perm_expr
     constraint  := ASSERT EITHER perm_expr OR perm_expr
                  | ASSERT assert_expr
     perm_expr   := perm_expr MEET/JOIN perm_expr | ( perm_expr )
                  | var | { perm* }
     assert_expr := assert_expr AND/OR boolean_expr | NOT assert_expr
                  | ( assert_expr ) | boolean_expr
     boolean_expr:= perm_expr cmp_op perm_expr

   A braced block whose first token is PERM is a permission block; any
   other braced block on a LET right-hand side parses as a filter
   expression — the form used to bind developer stub macros
   (LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }).

   Like the permission parser, this is an admission surface
   (docs/VETTING.md): nesting depth is capped (shared
   [Perm_parser.max_nesting]), errors carry source lines, and
   statements tick the ambient {!Budget}. *)

open Lexer

let check_nesting s depth =
  Budget.depth depth;
  if depth > Perm_parser.max_nesting then
    fail_at s
      (Printf.sprintf "nesting deeper than %d" Perm_parser.max_nesting)

let rec parse_perm_atom s depth : Policy.perm_expr =
  check_nesting s depth;
  match peek s with
  | LPAREN ->
    advance s;
    let e = parse_perm_expr ~depth:(depth + 1) s in
    expect s RPAREN;
    e
  | LBRACE ->
    advance s;
    let perms = Perm_parser.parse_perm_list s in
    expect s RBRACE;
    Policy.P_block (Perm.normalize perms)
  | IDENT id when not (Perm_parser.is_keyword id) ->
    advance s;
    Policy.P_var id
  | _ -> fail_at s "expected permission expression"

and parse_perm_expr ?(depth = 0) s : Policy.perm_expr =
  let rec loop lhs =
    if eat_kw s "MEET" then loop (Policy.P_meet (lhs, parse_perm_atom s depth))
    else if eat_kw s "JOIN" then
      loop (Policy.P_join (lhs, parse_perm_atom s depth))
    else lhs
  in
  loop (parse_perm_atom s depth)

let parse_cmp s : Policy.cmp =
  match peek s with
  | LE ->
    advance s;
    Policy.C_le
  | LT ->
    advance s;
    Policy.C_lt
  | GE ->
    advance s;
    Policy.C_ge
  | GT ->
    advance s;
    Policy.C_gt
  | EQ ->
    advance s;
    Policy.C_eq
  | _ -> fail_at s "expected comparison"

let rec parse_assert_expr ?(depth = 0) s : Policy.assert_expr =
  let rec or_loop lhs =
    if eat_kw s "OR" then or_loop (Policy.A_or (lhs, parse_assert_and s depth))
    else lhs
  in
  or_loop (parse_assert_and s depth)

and parse_assert_and s depth =
  let rec and_loop lhs =
    if eat_kw s "AND" then
      and_loop (Policy.A_and (lhs, parse_assert_unary s depth))
    else lhs
  in
  and_loop (parse_assert_unary s depth)

and parse_assert_unary s depth =
  check_nesting s depth;
  if eat_kw s "NOT" then Policy.A_not (parse_assert_unary s (depth + 1))
  else if peek s = LPAREN then begin
    (* "(" is ambiguous: it may open a parenthesised assert expression
       or a parenthesised perm expression that starts a comparison.
       Try the assert reading first and backtrack on failure (the token
       stream is a plain list, so a snapshot is cheap). *)
    let snapshot = s.toks in
    try
      advance s;
      let e = parse_assert_expr ~depth:(depth + 1) s in
      expect s RPAREN;
      e
    with Parse_error _ ->
      s.toks <- snapshot;
      parse_cmp_expr s depth
  end
  else parse_cmp_expr s depth

and parse_cmp_expr s depth =
  let lhs = parse_perm_expr ~depth s in
  let op = parse_cmp s in
  let rhs = parse_perm_expr ~depth s in
  Policy.A_cmp (lhs, op, rhs)

let parse_binding_rhs s : Policy.binding_rhs =
  if eat_kw s "APP" then
    match peek s with
    | STRING name | IDENT name ->
      advance s;
      Policy.B_app name
    | _ -> fail_at s "expected app name"
  else if peek s = LBRACE then begin
    match peek2 s with
    | IDENT id when String.uppercase_ascii id = "PERM" ->
      (* A permission block; parse as a full perm expression so
         trailing MEET/JOIN operators compose. *)
      Policy.B_perm (parse_perm_expr s)
    | _ ->
      advance s;
      let f = Perm_parser.parse_filter_expr ~depth:1 s in
      expect s RBRACE;
      Policy.B_filter f
  end
  else Policy.B_perm (parse_perm_expr s)

let parse_stmt s : Policy.stmt =
  Budget.step ();
  if eat_kw s "LET" then begin
    let var = expect_ident s in
    expect s EQ;
    Policy.Let (var, parse_binding_rhs s)
  end
  else if eat_kw s "ASSERT" then
    if eat_kw s "EITHER" then begin
      let a = parse_perm_expr s in
      expect_kw s "OR";
      let b = parse_perm_expr s in
      Policy.Assert_exclusive (a, b)
    end
    else Policy.Assert (parse_assert_expr s)
  else fail_at s "expected LET or ASSERT"

let of_string src : (Policy.t, string) result =
  try
    let s = of_string src in
    let rec go acc =
      match peek s with
      | EOF -> List.rev acc
      | _ -> go (parse_stmt s :: acc)
    in
    Ok (go [])
  with
  | Parse_error msg -> Error msg
  | Lex_error msg -> Error msg

let of_string_exn src =
  match of_string src with
  | Ok p -> p
  | Error e -> invalid_arg ("policy: " ^ e)
