(** Hand-written lexer shared by the permission language (Appendix A)
    and the security-policy language (Appendix B).

    Conventions from the paper's listings: backslash-newline continues
    a statement, [#] starts a comment, dotted quads lex as IP
    addresses, double-quoted strings are app names.

    Part of the admission surface for untrusted sources
    (docs/VETTING.md): tokens carry their source line so parser errors
    point at the offending statement, and every token ticks the ambient
    {!Budget} scope when one is installed. *)

type token =
  | IDENT of string
  | INT of int
  | IP of int32
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | LE
  | GE
  | LT
  | GT
  | EQ
  | EOF

exception Lex_error of string

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> token list
(** @raise Lex_error on malformed input.
    @raise Budget.Exhausted past the ambient budget, if installed. *)

val tokenize_positioned : string -> (token * int) list
(** Like {!tokenize}, pairing each token with its 1-based source line
    (the EOF token carries the last line). *)

(** {1 Token-stream cursor} for the recursive-descent parsers. *)

type stream = { mutable toks : (token * int) list }

exception Parse_error of string

val of_string : string -> stream
val peek : stream -> token
val peek2 : stream -> token

val line : stream -> int
(** Source line of the next token; 0 once exhausted past EOF. *)

val advance : stream -> unit
val next : stream -> token

val fail_at : stream -> string -> 'a
(** @raise Parse_error with the current line and token appended. *)

val expect : stream -> token -> unit

val at_kw : stream -> string -> bool
(** Case-insensitive keyword test against the next token. *)

val eat_kw : stream -> string -> bool
val expect_kw : stream -> string -> unit
val expect_ident : stream -> string
val expect_int : stream -> int
