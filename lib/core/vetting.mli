(** Admission vetting for untrusted manifests and policies
    (docs/VETTING.md).

    App manifests and (in delegated deployments) policy fragments
    arrive from outside the trust boundary (§III threat model), so they
    must be vetted before the reconciliation engine or the runtime
    touches them.  Vetting runs the normal pipeline — lex, parse,
    structural checks, macro expansion, normal-form probing,
    reconciliation — under a {!Budget} scope and classifies the
    outcome:

    - [Admitted]: every stage completed exactly, within budget.
    - [Degraded]: the input was admitted, but at least one stage took a
      conservative, fail-closed fallback (normal-form blow-up answered
      pessimistically, macro chain left unexpanded, policy statement
      skipped as a {!Reconcile.action.Policy_error}).  The notes say
      which.
    - [Rejected]: the input exhausted its budget or failed to parse.
      The pipeline never hangs, never exhausts the heap, and never
      lets an exception escape — hostile inputs cost a bounded amount
      of work and yield a structured report.

    Verdicts are counted per stage in the
    {!Shield_controller.Metrics} gauge registry (names [vet-admitted],
    [vet-degraded], [vet-rejected], [vet-rejected:<stage>]) so
    operators can see admission pressure next to cache and queue
    metrics. *)

type rejection = {
  stage : string;
      (** Pipeline stage that cut the input off: ["parse"],
          ["structure"], ["expand"], ["normalize"], ["compile"] or
          ["reconcile"]. *)
  reason : string;
  spent : Budget.spent;  (** Resources consumed up to the cut-off. *)
}

type 'a admission = {
  value : 'a;
  lint : Lint.finding list;
      (** Advisory shield-lint findings (docs/LINTING.md), computed
          after the structural stages under lint's own nested budget
          scope.  Findings never change the verdict: a lint-dirty but
          well-formed input is still admitted, and lint analysis that
          exhausts its budget degrades to [Info] "unverified" findings
          rather than to a [Degraded]/[Rejected] verdict. *)
  certificate : Verify.certificate option;
      (** shield-verify certificate over the reconciled result
          (docs/VERIFY.md) — [Some] only for {!vet_and_reconcile},
          which is the one pipeline that produces post-repair
          manifests to certify.  Like lint, the certificate is
          advisory at admission: a [Refuted] or [Unverified]
          certificate rides along for the administrator (and the CLI's
          [verify --deny]) without flipping the verdict, and
          verification runs under its own nested budget scope (with
          this admission's limits) so it can never reject the input. *)
}

type 'a verdict =
  | Admitted of 'a admission
  | Degraded of 'a admission * string list
      (** Usable result, but conservative fallbacks were taken; the
          notes (oldest first) say which. *)
  | Rejected of rejection

val vet_manifest :
  ?limits:Budget.limits -> string -> Perm.manifest verdict
(** Vet manifest source text: lex + parse (grammar nesting capped),
    structural caps (expression depth and size), and a normal-form
    probe of every filter.  Unexpanded developer stubs are normal at
    this stage (the policy binds them) and do not degrade the
    verdict.  Never raises. *)

val vet_manifest_ast :
  ?limits:Budget.limits -> Perm.manifest -> Perm.manifest verdict
(** Vet an already-built AST (apps handed over a typed API rather than
    source text): the same pipeline minus the parse stage.  Safe on
    adversarially deep expressions — structural checks are iterative.
    Never raises. *)

val vet_manifest_compiled :
  ?limits:Budget.limits ->
  Perm.manifest ->
  (Perm.manifest * Automaton.t) verdict
(** {!vet_manifest_ast} plus admission-time compilation: build the
    {!Automaton} decision DAG for the manifest inside the same budget
    scope (stage ["compile"], one tick per DAG node), so pathological
    manifests pay for their compiled size at admission rather than at
    app-load time.  The returned automaton is built against
    {!Filter_eval.pure_env}; engines that need the stateful dimensions
    recompile with their own environment ([Engine.create
    ~strategy:`Automaton]), which is cheap for anything this stage
    admitted.  Never raises. *)

val vet_policy : ?limits:Budget.limits -> string -> Policy.t verdict
(** Vet policy source text: parse, structural caps on every embedded
    filter and permission block, and a static reference check —
    variables used in assertions but bound by no [LET] degrade the
    verdict (reconciliation will report them as
    {!Reconcile.action.Policy_error}).  Never raises. *)

val vet_and_reconcile :
  ?limits:Budget.limits ->
  apps:(string * string) list ->
  string ->
  Reconcile.report verdict
(** [vet_and_reconcile ~apps policy_src] — the full admission pipeline:
    vet each app's manifest source and the policy source, then run
    {!Reconcile.run} under the same budget.
    [Degraded] when any stage fell back conservatively or any policy
    statement was skipped as a [Policy_error]; violations that the
    engine repaired are part of the admitted report, not a
    degradation.  The [lint] field aggregates the policy findings
    (with the app manifests' stub macros counted as live bindings)
    and each app's manifest findings (locations prefixed
    ["app <name>"]).  Never raises. *)

(** {1 Metrics} *)

type stats = {
  admitted : int;
  degraded : int;
  rejected : int;
  rejected_by_stage : (string * int) list;  (** Sorted by stage name. *)
}

val stats : unit -> stats
(** Process-wide verdict counters since start (or {!reset_stats}). *)

val reset_stats : unit -> unit

val pp_rejection : Format.formatter -> rejection -> unit
val pp_stats : Format.formatter -> stats -> unit

val verdict_label : 'a verdict -> string
(** ["admitted"], ["degraded"] or ["rejected"] — for logs and CLIs. *)
