(** Flow ownership and rule-budget bookkeeping (§IV-B: the ownership
    filter "inspects and keeps track of the issuers of all the existing
    flows").

    One store is shared by all permission engines of a deployment.  All
    operations are thread-safe; {!snapshot}/{!restore} give the
    transactional rollback {!Engine.check_transaction} needs. *)

open Shield_openflow
open Shield_openflow.Types

type rule = { match_ : Match_fields.t; priority : int; cookie : int }

type t

val create : unit -> t
val rules_at : t -> dpid -> rule list
val all_rules : t -> (dpid * rule) list

val generation : t -> int
(** Mutation counter: bumped by every {!record}, {!forget} and
    {!restore}.  {!Decision_cache} gates stateful entries on it — a
    decision cached at generation [g] is served only while the store is
    still at [g] (see docs/CACHING.md for the invalidation protocol).
    Reads are lock-free (atomic), so the checking hot path can consult
    it on every lookup; bumps happen inside the store's lock {e before}
    the mutation lands, so a reader that can observe a mutation also
    observes its bump.  Consequence (the publication invariant the
    caches rely on, pinned by the two-domain hammer in
    test/test_ownership.ml): two generation reads that bracket a locked
    read of the store and agree on [g] guarantee the store content seen
    is the generation-[g] state; stale cache entries are thereby
    over-invalidated under races, never served. *)

val record : t -> dpid:dpid -> Flow_mod.t -> cookie:int -> unit
(** Record an approved flow-mod: adds on [Add], re-attributes on
    [Modify], removes subsumed rules on [Delete].  [cookie] attributes
    rules whose flow-mod cookie is unset. *)

val forget : t -> dpid:dpid -> match_:Match_fields.t -> cookie:int -> unit
(** Drop a rule the switch expired (flow-removed event). *)

val owns_all_targeted :
  t -> cookie:int -> dpid:dpid -> command:Flow_mod.command ->
  match_:Match_fields.t -> bool
(** The OWN_FLOWS test: on [Add] the new rule must not overlap any
    other app's rule (the anti-shadowing/anti-tunnel property of §VII
    Scenario 2); on [Modify]/[Delete] every targeted rule must be
    owned. *)

val count : t -> cookie:int -> dpid:dpid option -> int
(** Rules attributed to [cookie] ([None] = whole domain) — the
    MAX_RULE_COUNT budget. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
