(* Permission comparison — Algorithm 1 of the paper (§V-B1).

   A permission expression denotes the set of app behaviours it allows,
   so comparisons are set inclusions.  High-level tokens are orthogonal,
   which reduces manifest comparison to per-token filter comparison; a
   filter-inclusion query [A ⊇ B] is answered by converting A to CNF
   and B to DNF and comparing singleton filters clause-pairwise:

     A ⊇ B  iff  ∀ disjunctive clause a of CNF(A),
                 ∀ conjunctive clause x of DNF(B):  a ⊇ x
     a ⊇ x  iff  ∃ aᵢ ∈ a, xⱼ ∈ x on the same attribute dimension
                 with aᵢ ⊇ xⱼ

   The procedure is sound but (deliberately, as in the paper)
   incomplete: filters on different dimensions are treated as
   independent and incomparable, and unprovable cases answer [false],
   so reconciliation errs on the side of restricting. *)

open Nf

(* Singleton inclusion: a ⊇ b, only within one dimension. ------------------ *)

let ip_range_includes ~addr_a ~mask_a ~addr_b ~mask_b =
  (* Range A (fewer fixed bits) covers range B iff A's mask bits are a
     subset of B's and the two agree on A's bits. *)
  Int32.logand mask_a (Int32.lognot mask_b) = 0l
  && Int32.logand addr_a mask_a = Int32.logand addr_b mask_a

let pred_includes (a : Filter.singleton) (b : Filter.singleton) =
  match (a, b) with
  | ( Filter.Pred { field = fa; value = va; mask = ma },
      Filter.Pred { field = fb; value = vb; mask = mb } )
    when fa = fb -> (
    match (va, vb) with
    | Filter.V_ip ia, Filter.V_ip ib ->
      let mask_a = Option.value ma ~default:0xFFFFFFFFl in
      let mask_b = Option.value mb ~default:0xFFFFFFFFl in
      ip_range_includes ~addr_a:ia ~mask_a ~addr_b:ib ~mask_b
    | Filter.V_int x, Filter.V_int y -> x = y
    | _ -> false)
  | _ -> false

let singleton_includes (a : Filter.singleton) (b : Filter.singleton) : bool =
  if Filter.dimension a <> Filter.dimension b then false
  else
    match (a, b) with
    | Filter.Pred _, Filter.Pred _ -> pred_includes a b
    | Filter.Wildcard { mask = ma; _ }, Filter.Wildcard { mask = mb; _ } ->
      (* Fewer forced-wildcard bits = more behaviours allowed. *)
      Int32.logand ma (Int32.lognot mb) = 0l
    | Filter.Action_f ka, Filter.Action_f kb -> (
      match (ka, kb) with
      | x, y when x = y -> true
      | Filter.A_modify _, Filter.A_forward ->
        (* Forward-only rules are allowed under a modify grant. *)
        true
      | _ -> false)
    | Filter.Owner oa, Filter.Owner ob ->
      oa = ob || (oa = Filter.All_flows && ob = Filter.Own_flows)
    | Filter.Max_priority na, Filter.Max_priority nb -> na >= nb
    | Filter.Min_priority na, Filter.Min_priority nb -> na <= nb
    | Filter.Max_rule_count na, Filter.Max_rule_count nb -> na >= nb
    | Filter.Pkt_out ka, Filter.Pkt_out kb ->
      ka = kb || (ka = Filter.Arbitrary && kb = Filter.From_pkt_in)
    | Filter.Phys_topo ta, Filter.Phys_topo tb ->
      Filter.Int_set.subset tb.switches ta.switches
      &&
      if Filter.Int_set.is_empty ta.links then
        (* No link restriction in A = all links among A's switches. *)
        true
      else
        (not (Filter.Int_set.is_empty tb.links))
        && Filter.Int_set.subset tb.links ta.links
    | Filter.Virt_topo va, Filter.Virt_topo vb -> va = vb
    | Filter.Callback ka, Filter.Callback kb -> ka = kb
    | Filter.Stats_level la, Filter.Stats_level lb -> la = lb
    | Filter.Macro ma, Filter.Macro mb -> ma = mb
    | _ -> false

(** Range disjointness of two singletons on the same dimension.

    NOTE: this is *not* semantic emptiness of a ∩ b.  Under the
    vacuous-pass convention (§IV-B), a call that lacks the inspected
    dimension satisfies both singletons, so even range-disjoint filters
    share those calls.  The inclusion algorithm therefore never uses
    this to justify [¬a ⊇ b] or to discharge clauses; it is exposed for
    diagnostics and same-domain reasoning only. *)
let singleton_disjoint (a : Filter.singleton) (b : Filter.singleton) : bool =
  if Filter.dimension a <> Filter.dimension b then false
  else
    match (a, b) with
    | ( Filter.Pred { value = Filter.V_ip ia; mask = ma; _ },
        Filter.Pred { value = Filter.V_ip ib; mask = mb; _ } ) ->
      let mask_a = Option.value ma ~default:0xFFFFFFFFl in
      let mask_b = Option.value mb ~default:0xFFFFFFFFl in
      Int32.logand (Int32.logxor ia ib) (Int32.logand mask_a mask_b) <> 0l
    | ( Filter.Pred { value = Filter.V_int x; _ },
        Filter.Pred { value = Filter.V_int y; _ } ) ->
      x <> y
    | Filter.Stats_level la, Filter.Stats_level lb -> la <> lb
    | Filter.Action_f Filter.A_drop, Filter.Action_f k
    | Filter.Action_f k, Filter.Action_f Filter.A_drop ->
      k <> Filter.A_drop
    | _ -> false

(* Literal inclusion -------------------------------------------------------- *)

let lit_includes (a : literal) (b : literal) =
  match (a.positive, b.positive) with
  | true, true -> singleton_includes a.atom b.atom
  | false, false ->
    (* ¬s ⊇ ¬t iff t ⊇ s: sound including on dimension-less calls,
       where both sides evaluate alike. *)
    singleton_includes b.atom a.atom
  | false, true | true, false ->
    (* Mixed polarity is never claimed: range disjointness does not
       imply semantic disjointness under vacuous-pass (see
       [singleton_disjoint]), so [false] is the only sound answer. *)
    false

(* Clause degeneracy -------------------------------------------------------- *)

(** A disjunctive clause that provably covers everything: contains
    complementary literals. *)
let disj_clause_tautological (c : clause) =
  List.exists
    (fun l ->
      List.exists
        (fun l' -> l.positive <> l'.positive && l.atom = l'.atom)
        c)
    c

(** A conjunctive clause that provably denotes the empty set: it
    contains complementary literals.  (Range-disjoint positive pairs do
    NOT qualify — dimension-less calls satisfy both.) *)
let conj_clause_contradictory (c : clause) =
  List.exists
    (fun l ->
      List.exists
        (fun l' -> l.positive <> l'.positive && l.atom = l'.atom)
        c)
    c

(* Step 2 of Algorithm 1: disjunctive clause a ⊇ conjunctive clause x. *)
let clause_includes (a : clause) (x : clause) =
  disj_clause_tautological a
  || conj_clause_contradictory x
  || List.exists (fun ai -> List.exists (fun xj -> lit_includes ai xj) x) a

(** Conjunctive-clause inclusion: DNF clause [a] ⊇ DNF clause [x] —
    viewing [a] as the CNF of its singleton clauses, every literal of
    [a] must include some literal of [x].  Vacuously true for the
    empty (True) clause; a contradictory [x] is included by
    anything.  The lint shadowed-clause rule builds on this. *)
let conj_clause_includes (a : clause) (x : clause) =
  conj_clause_contradictory x
  || List.for_all (fun ai -> List.exists (fun xj -> lit_includes ai xj) x) a

(* Inclusion queries repeat heavily during reconciliation (every
   boundary assertion and lattice operation re-compares the same
   filters), so answers are memoized alongside the normal-form memo in
   [Nf].  Filter expressions are immutable and the procedure is
   deterministic, so a memoized answer is identical to recomputation. *)

(* The memo value carries whether the answer came from a [Too_large]
   fallback, so the ambient {!Budget} degradation note fires on memo
   hits too — an admission that reuses a cached conservative answer is
   still a degraded admission (docs/VETTING.md). *)
let includes_memo : (Filter.expr * Filter.expr * int, bool * bool) Hashtbl.t =
  Hashtbl.create 256

let memo_max_entries = 8192
let memo_mutex = Mutex.create ()
let memo_counters = ref Shield_controller.Metrics.zero_cache_stats

let () =
  Shield_controller.Metrics.register_cache "inclusion-memo" (fun () ->
      !memo_counters)

let memo_stats () = !memo_counters

let clear_memo () =
  Mutex.lock memo_mutex;
  Hashtbl.reset includes_memo;
  Mutex.unlock memo_mutex

(* Fail-closed fallback on blow-up: [false] — "not provably included"
   restricts.  The [degraded] flag feeds the budget note. *)
let filter_includes_uncached ~max_clauses (a : Filter.expr) (b : Filter.expr) :
    bool * bool =
  if Filter.equal_expr a b then (true, false)
  else
    match (cnf ~max_clauses a, dnf ~max_clauses b) with
    | exception Too_large -> (false, true)
    | cnf_a, dnf_b ->
      ( List.for_all
          (fun ca -> List.for_all (fun xb -> clause_includes ca xb) dnf_b)
          cnf_a,
        false )

(** [filter_includes a b] — does filter [a] allow every behaviour [b]
    allows?  Sound, incomplete (conservatively [false]).  Memoized on
    [(a, b, max_clauses)] in a bounded process-wide table. *)
let filter_includes ?(max_clauses = 4096) (a : Filter.expr) (b : Filter.expr) =
  let module M = Shield_controller.Metrics in
  Budget.step ();
  let key = (a, b, max_clauses) in
  Mutex.lock memo_mutex;
  let cached = Hashtbl.find_opt includes_memo key in
  (match cached with
  | Some _ -> memo_counters := { !memo_counters with M.hits = !memo_counters.M.hits + 1 }
  | None -> ());
  Mutex.unlock memo_mutex;
  match cached with
  | Some (answer, degraded) ->
    if degraded then Budget.note "inclusion: fell back to FALSE past max_clauses";
    answer
  | None ->
    let (answer, degraded) as entry = filter_includes_uncached ~max_clauses a b in
    if degraded then Budget.note "inclusion: fell back to FALSE past max_clauses";
    Mutex.lock memo_mutex;
    memo_counters := { !memo_counters with M.misses = !memo_counters.M.misses + 1 };
    if Hashtbl.length includes_memo >= memo_max_entries then begin
      memo_counters :=
        { !memo_counters with
          M.evictions = !memo_counters.M.evictions + Hashtbl.length includes_memo };
      Hashtbl.reset includes_memo
    end;
    Hashtbl.replace includes_memo key entry;
    Mutex.unlock memo_mutex;
    answer

(** Conservative satisfiability: [false] only when the filter provably
    denotes the empty behaviour set.  Fail-closed fallback on blow-up:
    [true] — "possibly satisfiable" keeps mutual-exclusion constraints
    armed (an overlap we cannot disprove is treated as an overlap). *)
let filter_satisfiable ?(max_clauses = 4096) (e : Filter.expr) =
  Budget.step ();
  match dnf ~max_clauses e with
  | exception Too_large ->
    Budget.note "satisfiability: fell back to TRUE past max_clauses";
    true
  | clauses -> List.exists (fun c -> not (conj_clause_contradictory c)) clauses

(* Manifest-level relations ------------------------------------------------- *)

(** [manifest_includes a b] — manifest [a] grants every behaviour
    manifest [b] grants.  Orthogonal tokens reduce this to per-token
    filter inclusion (§V-B1). *)
let manifest_includes (a : Perm.manifest) (b : Perm.manifest) =
  List.for_all
    (fun (pb : Perm.t) ->
      (not (filter_satisfiable pb.filter))
      ||
      match Perm.find a pb.token with
      | Some pa -> filter_includes pa.filter pb.filter
      | None -> false)
    b

(** Semantic equality: mutual inclusion. *)
let manifest_equal (a : Perm.manifest) (b : Perm.manifest) =
  manifest_includes a b && manifest_includes b a

(** Do the two manifests share any allowed behaviour?  This is the
    possession test behind mutual-exclusion constraints: an app
    "possesses" permission set P when its manifest overlaps P. *)
let manifests_overlap (a : Perm.manifest) (b : Perm.manifest) =
  List.exists
    (fun (pa : Perm.t) ->
      match Perm.find b pa.token with
      | Some pb -> filter_satisfiable (Filter.conj pa.filter pb.filter)
      | None -> false)
    a

let compare_manifests (a : Perm.manifest) (b : Perm.manifest) :
    [ `Equal | `Subset | `Superset | `Incomparable ] =
  match (manifest_includes a b, manifest_includes b a) with
  | true, true -> `Equal
  | false, true -> `Subset
  | true, false -> `Superset
  | false, false -> `Incomparable
