(* Shared check-path plumbing.

   Every checker on the permission hot path answers the same two
   questions before it evaluates a single filter: which token does this
   call require, and how are the stateful filter dimensions (ownership,
   rule budgets) answered?  This module holds both, so the interpreting
   [Engine], the closure-compiled [Compiled] checker and the flat
   [Automaton] share one call→token mapping and one ownership
   environment instead of three drifting copies. *)

open Shield_openflow
open Shield_controller

(** Which token a call requires.  [None] = no permission needed
    (inter-app publications and their receipt are governed by
    subscription, not tokens). *)
let token_of_call (call : Api.call) : Token.t option =
  match call with
  | Api.Install_flow (_, fm) -> (
    match fm.Flow_mod.command with
    | Flow_mod.Add | Flow_mod.Modify -> Some Token.Insert_flow
    | Flow_mod.Delete -> Some Token.Delete_flow)
  | Api.Read_flow_table _ -> Some Token.Read_flow_table
  | Api.Read_topology -> Some Token.Visible_topology
  | Api.Modify_topology _ -> Some Token.Modify_topology
  | Api.Read_stats _ -> Some Token.Read_statistics
  | Api.Send_packet_out _ -> Some Token.Send_pkt_out
  | Api.Receive_event k -> (
    match k with
    | Api.E_packet_in -> Some Token.Pkt_in_event
    | Api.E_flow -> Some Token.Flow_event
    | Api.E_topology -> Some Token.Topology_event
    | Api.E_error -> Some Token.Error_event
    | Api.E_stats -> Some Token.Read_statistics
    | Api.E_app _ -> None)
  | Api.Read_payload_access -> Some Token.Read_payload
  | Api.Publish_event _ -> None
  | Api.Syscall (Api.Net_connect _) -> Some Token.Host_network
  | Api.Syscall (Api.File_open _) -> Some Token.File_system
  | Api.Syscall (Api.Spawn_process _) -> Some Token.Process_runtime

(* Index-encoded dispatch for the hot paths: [token_of_call] returns a
   statically-allocated [Some] (nullary payloads), but callers that
   only want a token-indexed array slot can skip the option entirely.
   The indexes are bound once from [Token.index] so the two mappings
   cannot drift. *)

let ix_read_flow_table = Token.index Token.Read_flow_table
let ix_insert_flow = Token.index Token.Insert_flow
let ix_delete_flow = Token.index Token.Delete_flow
let ix_flow_event = Token.index Token.Flow_event
let ix_visible_topology = Token.index Token.Visible_topology
let ix_modify_topology = Token.index Token.Modify_topology
let ix_topology_event = Token.index Token.Topology_event
let ix_read_statistics = Token.index Token.Read_statistics
let ix_error_event = Token.index Token.Error_event
let ix_read_payload = Token.index Token.Read_payload
let ix_send_pkt_out = Token.index Token.Send_pkt_out
let ix_pkt_in_event = Token.index Token.Pkt_in_event
let ix_host_network = Token.index Token.Host_network
let ix_file_system = Token.index Token.File_system
let ix_process_runtime = Token.index Token.Process_runtime

(** [Token.index]-encoded {!token_of_call}: the required token's index,
    or [-1] when no permission is needed.  Allocation-free. *)
let token_index_of_call (call : Api.call) : int =
  match call with
  | Api.Install_flow (_, fm) -> (
    match fm.Flow_mod.command with
    | Flow_mod.Add | Flow_mod.Modify -> ix_insert_flow
    | Flow_mod.Delete -> ix_delete_flow)
  | Api.Read_flow_table _ -> ix_read_flow_table
  | Api.Read_topology -> ix_visible_topology
  | Api.Modify_topology _ -> ix_modify_topology
  | Api.Read_stats _ -> ix_read_statistics
  | Api.Send_packet_out _ -> ix_send_pkt_out
  | Api.Receive_event k -> (
    match k with
    | Api.E_packet_in -> ix_pkt_in_event
    | Api.E_flow -> ix_flow_event
    | Api.E_topology -> ix_topology_event
    | Api.E_error -> ix_error_event
    | Api.E_stats -> ix_read_statistics
    | Api.E_app _ -> -1)
  | Api.Read_payload_access -> ix_read_payload
  | Api.Publish_event _ -> -1
  | Api.Syscall (Api.Net_connect _) -> ix_host_network
  | Api.Syscall (Api.File_open _) -> ix_file_system
  | Api.Syscall (Api.Spawn_process _) -> ix_process_runtime

let tokens_by_index =
  let a = Array.make Token.count Token.Read_flow_table in
  List.iter (fun t -> a.(Token.index t) <- t) Token.all;
  a

let token_of_index i = tokens_by_index.(i)

let is_stateful_call = function Api.Install_flow _ -> true | _ -> false

(** Answer the stateful filter dimensions from a shared ownership
    store on behalf of the app identified by [cookie]. *)
let env_of_ownership ~ownership ~cookie : Filter_eval.env =
  { Filter_eval.owns_all_targeted =
      (fun attrs ->
        match attrs.Attrs.cookie with
        | Some c ->
          (* Vetting an existing entry: owned iff tagged with our
             cookie. *)
          c = cookie
        | None -> (
          match (attrs.Attrs.dpid, attrs.Attrs.match_, attrs.Attrs.flow_command)
          with
          | Some dpid, Some match_, Some command ->
            Ownership.owns_all_targeted ownership ~cookie ~dpid ~command
              ~match_
          | _ -> true));
    rule_count = (fun dpid -> Ownership.count ownership ~cookie ~dpid) }
