(* Resource budgets for admitting untrusted manifests and policies.

   See budget.mli / docs/VETTING.md for the model.  Design constraints:

   - The hooks sit on hot paths (one per token, per expression node,
     per distributed clause), so the uninstalled case must be a single
     domain-local read, and the installed case a couple of integer
     operations.  The deadline (a syscall) is polled every 1024 steps.
   - Scopes are ambient rather than threaded through signatures so the
     admission pipeline can reuse the production code paths unchanged.
     Domain-local storage keeps concurrent domains independent;
     sys-threads within one domain share the scope, so admissions are
     one-at-a-time per domain (documented in the mli). *)

type limits = {
  max_steps : int;
  max_clauses : int;
  max_nodes : int;
  max_depth : int;
  deadline : float option;
}

let default_limits =
  { max_steps = 2_000_000;
    max_clauses = 262_144;
    max_nodes = 500_000;
    max_depth = 2_048;
    deadline = Some 5.0 }

type spent = {
  steps : int;
  clauses : int;
  nodes : int;
  depth_hwm : int;
  elapsed : float;
}

exception Exhausted of { stage : string; reason : string; spent : spent }

type t = {
  limits : limits;
  started : float;
  mutable stage : string;
  mutable steps : int;
  mutable clauses : int;
  mutable nodes : int;
  mutable depth_hwm : int;
  mutable notes : string list;  (* newest first *)
}

let create ?(limits = default_limits) () =
  { limits; started = Unix.gettimeofday (); stage = "start"; steps = 0;
    clauses = 0; nodes = 0; depth_hwm = 0; notes = [] }

let limits t = t.limits

let spent t =
  { steps = t.steps; clauses = t.clauses; nodes = t.nodes;
    depth_hwm = t.depth_hwm; elapsed = Unix.gettimeofday () -. t.started }

let notes t = List.rev t.notes

let scope_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get scope_key)

let with_scope t f =
  let cell = Domain.DLS.get scope_key in
  let previous = !cell in
  cell := Some t;
  Fun.protect ~finally:(fun () -> cell := previous) f

let exhaust t reason = raise (Exhausted { stage = t.stage; reason; spent = spent t })

let set_stage name = match current () with None -> () | Some t -> t.stage <- name
let stage () = match current () with None -> "?" | Some t -> t.stage

let step ?(cost = 1) () =
  match current () with
  | None -> ()
  | Some t ->
    t.steps <- t.steps + cost;
    if t.steps > t.limits.max_steps then
      exhaust t (Printf.sprintf "step budget exceeded (%d)" t.limits.max_steps);
    if t.steps land 1023 < cost then begin
      match t.limits.deadline with
      | Some d when Unix.gettimeofday () -. t.started > d ->
        exhaust t (Printf.sprintf "deadline exceeded (%.3fs)" d)
      | _ -> ()
    end

let alloc_clauses n =
  match current () with
  | None -> ()
  | Some t ->
    t.clauses <- t.clauses + n;
    if t.clauses > t.limits.max_clauses then
      exhaust t
        (Printf.sprintf "clause budget exceeded (%d)" t.limits.max_clauses)

let alloc_nodes n =
  match current () with
  | None -> ()
  | Some t ->
    t.nodes <- t.nodes + n;
    if t.nodes > t.limits.max_nodes then
      exhaust t (Printf.sprintf "node budget exceeded (%d)" t.limits.max_nodes)

let depth d =
  match current () with
  | None -> ()
  | Some t ->
    if d > t.depth_hwm then t.depth_hwm <- d;
    if d > t.limits.max_depth then
      exhaust t (Printf.sprintf "depth budget exceeded (%d)" t.limits.max_depth)

let note reason =
  match current () with
  | None -> ()
  | Some t -> if not (List.mem reason t.notes) then t.notes <- reason :: t.notes

let pp_spent ppf (s : spent) =
  Fmt.pf ppf "steps=%d clauses=%d nodes=%d depth=%d elapsed=%.3fs" s.steps
    s.clauses s.nodes s.depth_hwm s.elapsed
