(** Filter-expression evaluation: does this API call pass this filter?

    Semantic conventions (§IV-B):
    - a singleton on a dimension the call {e kind} lacks passes
      vacuously;
    - a predicate filter on a dimension the call has but leaves
      unconstrained fails (the call would be broader than allowed);
    - read-type visibility filters pass at check time and are enforced
      by response filtering in {!Engine}. *)

open Shield_openflow

(** Stateful dimensions are answered through callbacks, keeping this
    module independent of any state representation. *)
type env = {
  owns_all_targeted : Attrs.t -> bool;
      (** Every existing rule this flow-mod overlaps/targets belongs to
          the calling app; for entry vetting ([Attrs.cookie] set), is
          the entry the app's own. *)
  rule_count : Types.dpid option -> int;
      (** Rules the calling app currently has installed at the switch
          ([None] = domain-wide). *)
}

val pure_env : env
(** Stateless environment: ownership holds trivially, budgets empty. *)

val field_of_set_field : Action.set_field -> Filter.field

val virtual_big_switch_dpid : int
(** The datapath id apps confined to a single virtual big switch
    address (see {!Vtopo}). *)

val eval_singleton : env -> Filter.singleton -> Attrs.t -> bool
val eval : env -> Filter.expr -> Attrs.t -> bool

val explain : env -> Filter.expr -> Attrs.t -> bool * string
(** The {!eval} verdict (always identical to it) plus a one-line
    account of the deciding top-level clause, in re-parsable filter
    syntax: the first passing disjunct of an [Or]-rooted filter, the
    first failing conjunct of an [And]-rooted one, or the whole
    expression otherwise.  Intended for traces, [check --explain] and
    forensic reports. *)
