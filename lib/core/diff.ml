(* Symbolic lattice difference with witness synthesis.  See diff.mli.

   The candidate machinery here began life inside shield-verify's
   counterexample search and is the generalized, standalone form: a
   witness search enumerates concrete calls and keeps the first ones
   [Filter_eval] confirms.  The candidate space is seeded from the
   atoms of the filters under comparison: every predicate contributes
   its exact value, its subnet form and a value just outside its
   range; priority bounds contribute their boundary and the first
   value past it; topology sets contribute members and a non-member;
   and so on.  For a non-empty difference the region is almost always
   delimited by the atoms of the two filters, so this small
   atom-derived frontier finds the witness without anything like SMT.
   Every candidate costs one budget tick; searches are also
   hard-capped, so adversarial filters degrade to Unknown instead of
   to a scan. *)

open Shield_openflow
module Api = Shield_controller.Api

type witness = {
  token : Token.t;
  call : Api.call;
  why_left : string;
  why_right : string;
}

type verdict = Empty | Nonempty of witness list | Unknown of string

let pure = Filter_eval.pure_env
let eval_f f attrs = Filter_eval.eval pure f attrs

(* Candidate synthesis ------------------------------------------------------ *)

type cand_val = C_ipm of Match_fields.ip_match | C_int of int

type cands = {
  mutable per_field : (Filter.field * cand_val) list;
  mutable prios : int list;
  mutable dpids : int list;
  mutable actsets : Action.t list list;
  mutable levels : Stats.level list;
}

let add_uniq x xs = if List.mem x xs then xs else xs @ [ x ]

let set_field_for (f : Filter.field) : Action.set_field option =
  match f with
  | Filter.F_eth_src -> Some (Action.Set_dl_src 0xBEEF)
  | Filter.F_eth_dst -> Some (Action.Set_dl_dst 0xBEEF)
  | Filter.F_ip_src -> Some (Action.Set_nw_src 0x0A000063l)
  | Filter.F_ip_dst -> Some (Action.Set_nw_dst 0x0A000063l)
  | Filter.F_tcp_src -> Some (Action.Set_tp_src 4242)
  | Filter.F_tcp_dst -> Some (Action.Set_tp_dst 4242)
  | _ -> None

let harvest (filters : Filter.expr list) : cands =
  let c =
    { per_field = []; prios = []; dpids = []; actsets = []; levels = [] }
  in
  let add_field f v = c.per_field <- add_uniq (f, v) c.per_field in
  let one (s : Filter.singleton) =
    match s with
    | Filter.Pred { field; value = Filter.V_ip a; mask } ->
      let m = Option.value mask ~default:0xFFFFFFFFl in
      add_field field (C_ipm (Match_fields.exact_ip a));
      add_field field (C_ipm { Match_fields.addr = Int32.logand a m; mask = m });
      (* A value just outside the range: flip one bit the mask fixes. *)
      if m <> 0l then begin
        let bit = Int32.logand m (Int32.neg m) in
        add_field field (C_ipm (Match_fields.exact_ip (Int32.logxor a bit)))
      end
    | Filter.Pred { field; value = Filter.V_int v; _ } ->
      add_field field (C_int v);
      add_field field (C_int (v + 1))
    | Filter.Wildcard { field; mask } when Filter.is_ip_field field ->
      (* Constrains the field while keeping the mask bits wildcarded. *)
      add_field field
        (C_ipm { Match_fields.addr = 0l; mask = Int32.lognot mask })
    | Filter.Wildcard _ -> ()
    | Filter.Max_priority n ->
      c.prios <- add_uniq n c.prios;
      if n < 65535 then c.prios <- add_uniq (n + 1) c.prios
    | Filter.Min_priority n ->
      c.prios <- add_uniq n c.prios;
      if n > 0 then c.prios <- add_uniq (n - 1) c.prios
    | Filter.Phys_topo { switches; _ } ->
      Option.iter
        (fun d -> c.dpids <- add_uniq d c.dpids)
        (Filter.Int_set.min_elt_opt switches);
      Option.iter
        (fun d ->
          c.dpids <- add_uniq d c.dpids;
          c.dpids <- add_uniq (d + 1) c.dpids)
        (Filter.Int_set.max_elt_opt switches)
    | Filter.Virt_topo Filter.Single_big_switch ->
      c.dpids <- add_uniq Filter_eval.virtual_big_switch_dpid c.dpids
    | Filter.Virt_topo (Filter.Switch_groups groups) ->
      List.iter (fun (_, vid) -> c.dpids <- add_uniq vid c.dpids) groups
    | Filter.Stats_level l -> c.levels <- add_uniq l c.levels
    | Filter.Action_f Filter.A_drop -> c.actsets <- add_uniq [] c.actsets
    | Filter.Action_f Filter.A_forward ->
      c.actsets <- add_uniq [ Action.Output 2 ] c.actsets
    | Filter.Action_f (Filter.A_modify f) ->
      let set =
        match set_field_for f with
        | Some sf -> [ Action.Set sf; Action.Output 2 ]
        | None -> [ Action.Output 2 ]
      in
      c.actsets <- add_uniq set c.actsets
    | Filter.Max_rule_count _ | Filter.Pkt_out _ | Filter.Owner _
    | Filter.Callback _ | Filter.Macro _ ->
      ()
  in
  List.iter (fun f -> Filter.fold_atoms (fun () s -> one s) () f) filters;
  (* Defaults keep every dimension inhabited even when no atom names
     it, so unconstrained sides still yield candidates. *)
  c.prios <- add_uniq 100 c.prios;
  c.dpids <- add_uniq 1 c.dpids;
  c.actsets <- add_uniq [ Action.Output 2 ] c.actsets;
  c.actsets <- add_uniq [] c.actsets;
  c.actsets <- add_uniq [ Action.To_controller ] c.actsets;
  c.levels <- add_uniq Stats.Flow_level c.levels;
  c.levels <- add_uniq Stats.Switch_level c.levels;
  c

(* Match-record assignments: the cartesian product of {absent, each
   candidate value} over the fields that have candidates.  Lazy
   ([Seq]), widest dimension last, capped by the search driver. *)
let match_seq (c : cands) : Match_fields.t Seq.t =
  let fields =
    List.fold_left
      (fun acc (f, _) -> if List.mem f acc then acc else acc @ [ f ])
      [] c.per_field
  in
  let fields = List.filteri (fun i _ -> i < 6) fields in
  let values f =
    List.filter_map
      (fun (f', v) -> if f' = f then Some v else None)
      c.per_field
  in
  let apply (m : Match_fields.t) f (v : cand_val) : Match_fields.t =
    match (f, v) with
    | Filter.F_ip_src, C_ipm im -> { m with Match_fields.nw_src = Some im }
    | Filter.F_ip_dst, C_ipm im -> { m with Match_fields.nw_dst = Some im }
    | Filter.F_tcp_src, C_int v -> { m with Match_fields.tp_src = Some v }
    | Filter.F_tcp_dst, C_int v -> { m with Match_fields.tp_dst = Some v }
    | Filter.F_eth_src, C_int v -> { m with Match_fields.dl_src = Some v }
    | Filter.F_eth_dst, C_int v -> { m with Match_fields.dl_dst = Some v }
    | Filter.F_in_port, C_int v -> { m with Match_fields.in_port = Some v }
    | Filter.F_eth_type, C_int v ->
      { m with Match_fields.dl_type = Some (Types.eth_type_of_code v) }
    | Filter.F_ip_proto, C_int v ->
      { m with Match_fields.nw_proto = Some (Types.ip_proto_of_code v) }
    | Filter.F_vlan, C_int v -> { m with Match_fields.dl_vlan = Some v }
    | _ -> m
  in
  let rec go fields (m : Match_fields.t) : Match_fields.t Seq.t =
    match fields with
    | [] -> Seq.return m
    | f :: rest ->
      Seq.concat_map
        (fun v_opt ->
          let m' = match v_opt with None -> m | Some v -> apply m f v in
          go rest m')
        (List.to_seq (None :: List.map Option.some (values f)))
  in
  go fields Match_fields.wildcard_all

let seq_prod (xs : 'a list) (f : 'a -> 'b Seq.t) : 'b Seq.t =
  Seq.concat_map f (List.to_seq xs)

let ip_cands (c : cands) field ~default : Types.ipv4 list =
  let vs =
    List.filter_map
      (function
        | f, C_ipm im when f = field -> Some im.Match_fields.addr
        | _ -> None)
      c.per_field
  in
  if vs = [] then [ default ] else vs

let int_cands (c : cands) field ~default : int list =
  let vs =
    List.filter_map
      (function f, C_int v when f = field -> Some v | _ -> None)
      c.per_field
  in
  if vs = [] then [ default ] else vs

let packets (c : cands) : Packet.t list =
  let dsts = ip_cands c Filter.F_ip_dst ~default:0x0A000001l in
  let srcs = ip_cands c Filter.F_ip_src ~default:0x0A000009l in
  let tp_dsts = int_cands c Filter.F_tcp_dst ~default:80 in
  let tcps =
    List.concat_map
      (fun nw_dst ->
        List.map
          (fun tp_dst ->
            Packet.tcp ~src:1 ~dst:2 ~nw_src:(List.hd srcs) ~nw_dst
              ~tp_src:1234 ~tp_dst ())
          (List.filteri (fun i _ -> i < 3) tp_dsts))
      (List.filteri (fun i _ -> i < 3) dsts)
  in
  Packet.arp ~src:1 ~dst:2 () :: tcps

(* All candidate calls for [token], as a lazy sequence. *)
let calls_for (c : cands) (token : Token.t) : Api.call Seq.t =
  let matches () = match_seq c in
  let install mk =
    seq_prod c.prios (fun p ->
        seq_prod c.dpids (fun d ->
            seq_prod c.actsets (fun al ->
                Seq.map (fun m -> mk p d al m) (matches ()))))
  in
  match token with
  | Token.Insert_flow ->
    install (fun p d al m ->
        Api.Install_flow (d, Flow_mod.add ~priority:p ~match_:m ~actions:al ()))
  | Token.Delete_flow ->
    seq_prod c.prios (fun p ->
        seq_prod c.dpids (fun d ->
            Seq.map
              (fun m ->
                Api.Install_flow (d, Flow_mod.delete ~priority:p ~match_:m ()))
              (matches ())))
  | Token.Read_flow_table ->
    seq_prod (None :: List.map Option.some c.dpids) (fun dpid ->
        Seq.cons
          (Api.Read_flow_table { dpid; pattern = None })
          (Seq.map
             (fun m -> Api.Read_flow_table { dpid; pattern = Some m })
             (matches ())))
  | Token.Visible_topology -> Seq.return Api.Read_topology
  | Token.Modify_topology ->
    seq_prod c.dpids (fun d -> Seq.return (Api.Modify_topology (Api.Add_switch d)))
  | Token.Read_statistics ->
    Seq.append
      (seq_prod c.levels (fun level ->
           seq_prod (None :: List.map Option.some c.dpids) (fun dpid ->
               Seq.cons
                 (Api.Read_stats (Stats.request ?dpid level))
                 (Seq.map
                    (fun m ->
                      Api.Read_stats (Stats.request ?dpid ~match_filter:m level))
                    (matches ())))))
      (Seq.return (Api.Receive_event Api.E_stats))
  | Token.Flow_event -> Seq.return (Api.Receive_event Api.E_flow)
  | Token.Topology_event -> Seq.return (Api.Receive_event Api.E_topology)
  | Token.Error_event -> Seq.return (Api.Receive_event Api.E_error)
  | Token.Pkt_in_event -> Seq.return (Api.Receive_event Api.E_packet_in)
  | Token.Read_payload -> Seq.return Api.Read_payload_access
  | Token.Send_pkt_out ->
    seq_prod c.dpids (fun dpid ->
        seq_prod [ true; false ] (fun from_pkt_in ->
            Seq.map
              (fun packet ->
                Api.Send_packet_out { dpid; port = 2; packet; from_pkt_in })
              (List.to_seq (packets c))))
  | Token.Host_network ->
    seq_prod (ip_cands c Filter.F_ip_dst ~default:0x0A000001l) (fun dst ->
        seq_prod (int_cands c Filter.F_tcp_dst ~default:80) (fun dst_port ->
            Seq.return (Api.Syscall (Api.Net_connect { dst; dst_port; payload = "" }))))
  | Token.File_system ->
    List.to_seq
      [ Api.Syscall (Api.File_open { path = "/etc/app.conf"; write = false });
        Api.Syscall (Api.File_open { path = "/etc/app.conf"; write = true }) ]
  | Token.Process_runtime -> Seq.return (Api.Syscall (Api.Spawn_process "helper"))

let max_candidates = 4096

let find_call ~(filters : Filter.expr list) (token : Token.t)
    ~(goal : Attrs.t -> bool) : (Api.call * Attrs.t) option =
  let cands = harvest filters in
  let seq = calls_for cands token in
  let rec scan n seq =
    if n >= max_candidates then None
    else
      match seq () with
      | Seq.Nil -> None
      | Seq.Cons (call, rest) ->
        Budget.step ();
        let attrs = Attrs.of_call call in
        if goal attrs then Some (call, attrs) else scan (n + 1) rest
  in
  scan 0 seq

(* Verdicts ----------------------------------------------------------------- *)

let dedup ?(cap = 8) xs =
  let rec go seen acc n = function
    | [] -> List.rev acc
    | _ :: _ when n >= cap -> List.rev acc
    | x :: rest ->
      if List.memq x seen then go seen acc n rest
      else go (x :: seen) (x :: acc) (n + 1) rest
  in
  go [] [] 0 xs

(* The fail-closed absorption shared by both verdicts: budget
   exhaustion, normal-form blow-ups and internal errors all answer
   [Unknown], never [Empty] (the direction table in docs/VETTING.md;
   pinned by test/test_diff.ml).  The spent budget stays spent, so a
   caller folding many differences degrades each remaining query at
   its first tick instead of looping. *)
let guarded (f : unit -> verdict) : verdict =
  match f () with
  | v -> v
  | exception Budget.Exhausted { reason; _ } ->
    Unknown ("budget exhausted: " ^ reason)
  | exception Nf.Too_large -> Unknown "normal form too large; diff degraded"
  | exception Stack_overflow -> Unknown "stack overflow during diff"
  | exception exn -> Unknown ("internal error: " ^ Printexc.to_string exn)

let witnesses_over (p : Perm.manifest) ~(max_witnesses : int)
    (search : Perm.t -> witness option) : witness list =
  let rec go acc n = function
    | [] -> List.rev acc
    | _ :: _ when n >= max_witnesses -> List.rev acc
    | perm :: rest -> (
      match search perm with
      | Some w -> go (w :: acc) (n + 1) rest
      | None -> go acc n rest)
  in
  go [] 0 p

let diff ?(max_witnesses = 4) (p : Perm.manifest) (q : Perm.manifest) : verdict =
  guarded (fun () ->
      if Inclusion.manifest_includes q p then Empty
      else
        let search (perm : Perm.t) =
          let token = perm.Perm.token in
          let fl = perm.Perm.filter in
          let fr = Perm.filter_of q token in
          let goal attrs = eval_f fl attrs && not (eval_f fr attrs) in
          match find_call ~filters:[ fl; fr ] token ~goal with
          | None -> None
          | Some (call, attrs) ->
            let _, why_left = Filter_eval.explain pure fl attrs in
            let _, why_right = Filter_eval.explain pure fr attrs in
            Some { token; call; why_left; why_right }
        in
        match witnesses_over p ~max_witnesses search with
        | [] ->
          Unknown
            "difference neither provably empty (Algorithm 1 is incomplete) \
             nor witnessed by a confirmed call"
        | ws -> Nonempty ws)

let overlap ?(max_witnesses = 4) (p : Perm.manifest) (q : Perm.manifest) :
    verdict =
  guarded (fun () ->
      (* [manifests_overlap] is conservative toward [true], so a
         [false] is a sound disjointness proof. *)
      if not (Inclusion.manifests_overlap p q) then Empty
      else
        let search (perm : Perm.t) =
          let token = perm.Perm.token in
          let fl = perm.Perm.filter in
          let fr = Perm.filter_of q token in
          if fr = Filter.False then None
          else
            let goal attrs = eval_f fl attrs && eval_f fr attrs in
            match find_call ~filters:[ fl; fr ] token ~goal with
            | None -> None
            | Some (call, attrs) ->
              let _, why_left = Filter_eval.explain pure fl attrs in
              let _, why_right = Filter_eval.explain pure fr attrs in
              Some { token; call; why_left; why_right }
        in
        match witnesses_over p ~max_witnesses search with
        | [] ->
          Unknown
            "overlap neither provably empty nor witnessed by a confirmed call"
        | ws -> Nonempty ws)
