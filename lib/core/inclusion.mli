(** Permission comparison — Algorithm 1 of the paper (§V-B1).

    Permission expressions denote behaviour sets; comparisons are set
    inclusions.  The procedure is sound but deliberately incomplete:
    unprovable cases answer [false], so reconciliation errs toward
    restriction.  Soundness against the evaluation semantics is
    property-tested. *)

val singleton_includes : Filter.singleton -> Filter.singleton -> bool
(** [singleton_includes a b] — every behaviour [b] allows, [a] allows.
    Only claimable within one attribute dimension. *)

val singleton_disjoint : Filter.singleton -> Filter.singleton -> bool
(** Range disjointness on one dimension.  NOT semantic emptiness of
    [a ∩ b]: under the vacuous-pass convention, calls lacking the
    dimension satisfy both.  Exposed for diagnostics; the inclusion
    algorithm never uses it. *)

val conj_clause_includes : Nf.clause -> Nf.clause -> bool
(** [conj_clause_includes a x] — conjunctive (DNF) clause [a] allows
    every behaviour conjunctive clause [x] allows: every literal of
    [a] includes some literal of [x] (or [x] is contradictory).
    Sound, incomplete.  The empty (True) clause includes everything.
    Used by the lint shadowed-clause rule (docs/LINTING.md). *)

val filter_includes : ?max_clauses:int -> Filter.expr -> Filter.expr -> bool
(** [filter_includes a b] — filter [a] allows every behaviour [b]
    allows.  CNF(a) × DNF(b) clause-pairwise comparison; conservative
    [false] past the [max_clauses] guard.  Answers are memoized on
    [(a, b, max_clauses)] in a bounded process-wide table (registered
    as ["inclusion-memo"] in the {!Shield_controller.Metrics} cache
    registry); expressions are immutable, so memoized answers equal
    recomputation. *)

val memo_stats : unit -> Shield_controller.Metrics.cache_stats
(** Hit/miss/eviction counters of the inclusion memo table. *)

val clear_memo : unit -> unit
(** Drop the inclusion memo table (counters are kept). *)

val filter_satisfiable : ?max_clauses:int -> Filter.expr -> bool
(** Conservative satisfiability: [false] only when the filter provably
    denotes the empty behaviour set (complementary literals in every
    DNF clause). *)

val manifest_includes : Perm.manifest -> Perm.manifest -> bool
(** Manifest-level inclusion: per-token filter inclusion (tokens are
    orthogonal). *)

val manifest_equal : Perm.manifest -> Perm.manifest -> bool
(** Semantic equality: mutual inclusion. *)

val manifests_overlap : Perm.manifest -> Perm.manifest -> bool
(** Do the two manifests share any allowed behaviour?  The possession
    test behind mutual-exclusion constraints; conservative toward
    reporting overlap. *)

val compare_manifests :
  Perm.manifest -> Perm.manifest -> [ `Equal | `Subset | `Superset | `Incomparable ]
