(* Flat decision automaton — the "compile, don't interpret" end of the
   checker spectrum (see automaton.mli and docs/AUTOMATON.md).

   Layout: one shared node store (parallel arrays [tests]/[on_true]/
   [on_false]) holds the branching programs of every filter in the
   manifest, hash-consed so identical subtrees appear once.  A root
   table indexed by [Token.index] points each granted token at its
   filter's entry node.  Leaves are encoded as negative indexes
   carrying the verdict and the deciding top-level clause, so
   [check_explained] reads its account off the same walk that produced
   the decision.

   Evaluation projects the call's filter-relevant attributes into one
   small immutable context record (unboxed ints for the scalar
   dimensions, the match fields shared with the call itself), then
   chases node indexes with pure integer compares; header fields are
   read straight off the match record — the [Some match_] branch of
   [Attrs.field_value] inlined — and the full [Attrs.t] is built only
   when a stateful or slow-fallback test demands it.  There is no
   shared mutable evaluation state, so [check] is safe under
   concurrent callers by construction; [check_batch] amortizes the
   per-call dispatch and counter bookkeeping on top. *)

open Shield_controller

(* Header-field indexing ------------------------------------------------------ *)

let nfields = 10

let field_index : Filter.field -> int = function
  | Filter.F_ip_src -> 0
  | Filter.F_ip_dst -> 1
  | Filter.F_tcp_src -> 2
  | Filter.F_tcp_dst -> 3
  | Filter.F_eth_src -> 4
  | Filter.F_eth_dst -> 5
  | Filter.F_in_port -> 6
  | Filter.F_eth_type -> 7
  | Filter.F_ip_proto -> 8
  | Filter.F_vlan -> 9

let field_of_index =
  [| Filter.F_ip_src; Filter.F_ip_dst; Filter.F_tcp_src; Filter.F_tcp_dst;
     Filter.F_eth_src; Filter.F_eth_dst; Filter.F_in_port; Filter.F_eth_type;
     Filter.F_ip_proto; Filter.F_vlan |]

(* 32-bit values live as untagged non-negative ints on the hot path. *)
let u32 (x : int32) = Int32.to_int x land 0xFFFFFFFF

let stats_code : Shield_openflow.Stats.level -> int = function
  | Shield_openflow.Stats.Flow_level -> 0
  | Shield_openflow.Stats.Port_level -> 1
  | Shield_openflow.Stats.Switch_level -> 2

(* Tests ----------------------------------------------------------------------

   One decision-node test.  Constants are pre-resolved to ints at
   compile time; the few singletons with no fast projection fall back
   to the interpreter's primitive ([T_slow]). *)

type test =
  | T_pred_ip of { fld : int; fmask : int; fval_masked : int; fval_raw : int }
      (* Pred with a V_ip value: [fval_masked] = value & mask for the
         range-inclusion compare, [fval_raw] for the exact-int case. *)
  | T_pred_int of { fld : int; v : int }  (* Pred with a V_int value. *)
  | T_wildcard of { fld : int; mask : int }
  | T_prio of { lo : int; hi : int }
      (* Fused priority interval: lo <= p <= hi, vacuous when the call
         has no priority. *)
  | T_budget of int  (* Fused MAX_RULE_COUNT bound. *)
  | T_owner  (* OWN_FLOWS *)
  | T_pkt_out_replay  (* PKT_OUT FROM_PKT_IN *)
  | T_stats_level of int
  | T_dpid_mem of Filter.Int_set.t  (* PHYS_TOPO switch membership. *)
  | T_int_mem of { fld : int; vals : int array }
      (* Fused same-field integer-predicate disjunction (port lists);
         [vals] sorted ascending for binary search. *)
  | T_slow of Filter.singleton  (* Fallback: actions, virtual topo, … *)

(* Leaf encoding: negative indexes.  A leaf carries the verdict bit and
   the deciding top-level clause (-1 = the whole filter / no single
   clause). *)

let enc_leaf ~pass ~clause =
  let bit = if pass then 1 else 0 in
  -((((clause + 1) lsl 1) lor bit) + 1)

let leaf_pass idx = (-idx - 1) land 1 = 1
let leaf_clause idx = ((-idx - 1) lsr 1) - 1
let absent = min_int (* root sentinel: token not granted *)

(* How the source filter's top level shapes the explanation, mirroring
   [Filter_eval.explain]'s four cases. *)
type shape =
  | Sh_true
  | Sh_false
  | Sh_or of string array  (* top-level disjuncts, rendered *)
  | Sh_and of string array
  | Sh_single of string

let dpid_absent = min_int

type t = {
  tests : test array;
  on_true : int array;
  on_false : int array;
  roots : int array;  (* Token.index -> node/leaf, or [absent] *)
  shapes : shape array;
  env : Filter_eval.env;
  cache : Decision_cache.t option;
  deny_missing : Api.decision array;  (* preallocated per token *)
  deny_reject : Api.decision array;
  built : build_stats;
  mutable checks : int;
  mutable denials : int;
}

and build_stats = { nodes : int; shared : int; collapsed : int; tokens : int }

(* Compilation ---------------------------------------------------------------- *)

(* Intermediate form: atoms lowered to tests (or constants), and/or
   flattened to lists so the fusion passes see whole runs. *)
type pre =
  | P_true
  | P_false
  | P_test of test
  | P_and of pre list
  | P_or of pre list
  | P_not of pre

let lower_singleton (s : Filter.singleton) : pre =
  match s with
  | Filter.Pred { field; value; mask } -> (
    match value with
    | Filter.V_ip ip ->
      let fmask = u32 (Option.value mask ~default:0xFFFFFFFFl) in
      P_test
        (T_pred_ip
           { fld = field_index field;
             fmask;
             fval_masked = u32 ip land fmask;
             fval_raw = u32 ip })
    | Filter.V_int v -> P_test (T_pred_int { fld = field_index field; v }))
  | Filter.Wildcard { field; mask } ->
    P_test (T_wildcard { fld = field_index field; mask = u32 mask })
  | Filter.Max_priority n -> P_test (T_prio { lo = min_int; hi = n })
  | Filter.Min_priority n -> P_test (T_prio { lo = n; hi = max_int })
  | Filter.Max_rule_count n -> P_test (T_budget n)
  | Filter.Owner Filter.All_flows -> P_true
  | Filter.Owner Filter.Own_flows -> P_test T_owner
  | Filter.Pkt_out Filter.Arbitrary -> P_true
  | Filter.Pkt_out Filter.From_pkt_in -> P_test T_pkt_out_replay
  | Filter.Stats_level l -> P_test (T_stats_level (stats_code l))
  | Filter.Phys_topo { switches; _ } -> P_test (T_dpid_mem switches)
  | Filter.Callback _ -> P_true (* capability marker, as Filter_eval *)
  | Filter.Macro _ -> P_false (* unresolved stub: deny closed *)
  | Filter.Virt_topo _ | Filter.Action_f _ -> P_test (T_slow s)

(* Conjunction fusion: all priority atoms in one run become a single
   closed interval (max of the lows, min of the highs — both vacuous
   together when the call has no priority), all rule-count atoms the
   single tightest bound.  The fused test sits at the first
   occurrence's position; AND is commutative so the verdict is
   unchanged. *)
let fuse_and (ps : pre list) : pre =
  let lo = ref min_int and hi = ref max_int and nprio = ref 0 in
  let bud = ref max_int and nbud = ref 0 in
  List.iter
    (function
      | P_test (T_prio p) ->
        incr nprio;
        if p.lo > !lo then lo := p.lo;
        if p.hi < !hi then hi := p.hi
      | P_test (T_budget n) ->
        incr nbud;
        if n < !bud then bud := n
      | _ -> ())
    ps;
  let first_prio = ref true and first_bud = ref true in
  let ps =
    if !nprio <= 1 && !nbud <= 1 then ps
    else
      List.filter_map
        (function
          | P_test (T_prio _) ->
            if !first_prio then begin
              first_prio := false;
              Some (P_test (T_prio { lo = !lo; hi = !hi }))
            end
            else None
          | P_test (T_budget _) ->
            if !first_bud then begin
              first_bud := false;
              Some (P_test (T_budget !bud))
            end
            else None
          | p -> Some p)
        ps
  in
  match ps with [] -> P_true | [ p ] -> p | ps -> P_and ps

(* Disjunction fusion: integer predicates on one field (port lists)
   become a single sorted-membership test.  Sound because the preds
   share every gate — same vacuous-pass conditions, and the IP-range /
   unconstrained cases fail each disjunct individually exactly as they
   fail the membership test. *)
let fuse_or (ps : pre list) : pre =
  let counts = Array.make nfields 0 in
  List.iter
    (function
      | P_test (T_pred_int { fld; _ }) -> counts.(fld) <- counts.(fld) + 1
      | _ -> ())
    ps;
  if not (Array.exists (fun c -> c >= 2) counts) then
    match ps with [] -> P_false | [ p ] -> p | ps -> P_or ps
  else begin
    let vals = Array.make nfields [] in
    List.iter
      (function
        | P_test (T_pred_int { fld; v }) when counts.(fld) >= 2 ->
          vals.(fld) <- v :: vals.(fld)
        | _ -> ())
      ps;
    let emitted = Array.make nfields false in
    let ps =
      List.filter_map
        (function
          | P_test (T_pred_int { fld; _ }) when counts.(fld) >= 2 ->
            if emitted.(fld) then None
            else begin
              emitted.(fld) <- true;
              let a = Array.of_list (List.sort_uniq compare vals.(fld)) in
              Some (P_test (T_int_mem { fld; vals = a }))
            end
          | p -> Some p)
        ps
    in
    match ps with [] -> P_false | [ p ] -> p | ps -> P_or ps
  end

(* Top-level clause splitting, exactly as [Filter_eval.explain]
   flattens for its clause numbering. *)
let rec disjuncts = function
  | Filter.Or (a, b) -> disjuncts a @ disjuncts b
  | e -> [ e ]

let rec conjuncts = function
  | Filter.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec lower (e : Filter.expr) : pre =
  match e with
  | Filter.True -> P_true
  | Filter.False -> P_false
  | Filter.Atom s -> lower_singleton s
  | Filter.And _ -> fuse_and (List.map lower (conjuncts e))
  | Filter.Or _ -> fuse_or (List.map lower (disjuncts e))
  | Filter.Not a -> P_not (lower a)

(* Node store builder: hash-consed append-only arrays. *)
type builder = {
  mutable b_tests : test array;
  mutable b_true : int array;
  mutable b_false : int array;
  mutable n : int;
  tbl : (test * int * int, int) Hashtbl.t;
  mutable shared : int;
  mutable collapsed : int;
}

let new_builder () =
  { b_tests = Array.make 64 T_owner;
    b_true = Array.make 64 0;
    b_false = Array.make 64 0;
    n = 0;
    tbl = Hashtbl.create 128;
    shared = 0;
    collapsed = 0 }

let mknode b test t f =
  if t = f then begin
    (* The test cannot change the outcome: elide it. *)
    b.collapsed <- b.collapsed + 1;
    t
  end
  else begin
    Budget.step ();
    let key = (test, t, f) in
    match Hashtbl.find_opt b.tbl key with
    | Some i ->
      b.shared <- b.shared + 1;
      i
    | None ->
      if b.n = Array.length b.b_tests then begin
        let grow a fill =
          let a' = Array.make (2 * Array.length a) fill in
          Array.blit a 0 a' 0 b.n;
          a'
        in
        b.b_tests <- grow b.b_tests T_owner;
        b.b_true <- grow b.b_true 0;
        b.b_false <- grow b.b_false 0
      end;
      let i = b.n in
      b.b_tests.(i) <- test;
      b.b_true.(i) <- t;
      b.b_false.(i) <- f;
      b.n <- i + 1;
      Hashtbl.add b.tbl key i;
      i
  end

(* The classic linear-size branching-program construction: [build e t f]
   is a DAG deciding [e], continuing to [t] on true and [f] on false.
   Short-circuit order matches [Filter_eval.eval] left to right. *)
let rec build b (p : pre) ~t ~f =
  match p with
  | P_true -> t
  | P_false -> f
  | P_test test -> mknode b test t f
  | P_and ps -> List.fold_right (fun p acc -> build b p ~t:acc ~f) ps t
  | P_or ps -> List.fold_right (fun p acc -> build b p ~t ~f:acc) ps f
  | P_not p -> build b p ~t:f ~f:t

(* Path-sensitive construction -------------------------------------------------

   The linear construction re-tests a predicate every time the source
   filter repeats it: a manifest shaped [core ∧ (anchor ∨ n₁) ∧ … ∧
   (anchor ∨ nₖ)] (the Figure-5 generator, and the common "every
   clause re-states the subnet" idiom) walks the anchor k times per
   call.  Threading a context — the tests already decided on this
   path, with their outcomes — lets construction resolve a repeated
   test immediately, so the compiled pass path tests each distinct
   predicate at most once.

   Continuations become functions of the context.  That can rebuild a
   chain tail once per distinct path context (exponential in theory),
   so two guards bound it: contexts are projected down to the tests
   that can still occur in the remaining clauses before the chain memo
   is consulted — paths that agree on the shared anchors converge —
   and a step counter aborts to the linear construction ([Too_wide])
   if a hostile filter still explodes.  Abandoned nodes from an
   aborted attempt stay in the store unreferenced; only pathological
   inputs pay that. *)

exception Too_wide

type cbuilder = {
  cb : builder;
  chain_memo : (int * (test * bool) list, int) Hashtbl.t;
  mutable steps : int;
  max_steps : int;
}

let ctx_known ctx test =
  let rec go = function
    | [] -> None
    | (t, v) :: rest -> if compare t test = 0 then Some v else go rest
  in
  go ctx

let rec buildc c (p : pre) ctx ~(t : (test * bool) list -> int)
    ~(f : (test * bool) list -> int) =
  c.steps <- c.steps + 1;
  if c.steps > c.max_steps then raise Too_wide;
  match p with
  | P_true -> t ctx
  | P_false -> f ctx
  | P_test test -> (
    match ctx_known ctx test with
    | Some true -> t ctx
    | Some false -> f ctx
    | None ->
      let tn = t ((test, true) :: ctx) in
      let fn = f ((test, false) :: ctx) in
      mknode c.cb test tn fn)
  | P_and ps ->
    let rec go ps ctx =
      match ps with [] -> t ctx | p :: rest -> buildc c p ctx ~t:(go rest) ~f
    in
    go ps ctx
  | P_or ps ->
    let rec go ps ctx =
      match ps with [] -> f ctx | p :: rest -> buildc c p ctx ~t ~f:(go rest)
    in
    go ps ctx
  | P_not p -> buildc c p ctx ~t:f ~f:t

let rec pre_tests acc = function
  | P_true | P_false -> acc
  | P_test t -> t :: acc
  | P_and ps | P_or ps -> List.fold_left pre_tests acc ps
  | P_not p -> pre_tests acc p

let rec pre_size = function
  | P_true | P_false | P_test _ -> 1
  | P_and ps | P_or ps -> List.fold_left (fun n p -> n + pre_size p) 1 ps
  | P_not p -> 1 + pre_size p

let cbuilder b pres =
  let size = Array.fold_left (fun n p -> n + pre_size p) 0 pres in
  { cb = b;
    chain_memo = Hashtbl.create 64;
    steps = 0;
    max_steps = 4096 + (64 * size) }

(* Compile a clause chain with the context threaded across clauses.
   [suffix.(i)] holds the tests occurring in clauses >= i; projecting
   the context down to it before the memo lookup makes paths that
   agree on the shared tests hit the same tail. *)
let chain c pres ~(shape : [ `And | `Or ]) ~final =
  let n = Array.length pres in
  let suffix = Array.make (n + 1) [] in
  for i = n - 1 downto 0 do
    suffix.(i) <- pre_tests suffix.(i + 1) pres.(i)
  done;
  let project i ctx =
    List.sort compare
      (List.filter
         (fun (t, _) -> List.exists (fun t' -> compare t t' = 0) suffix.(i))
         ctx)
  in
  let rec go i ctx =
    if i = n then final
    else
      let ctx = project i ctx in
      match Hashtbl.find_opt c.chain_memo (i, ctx) with
      | Some r -> r
      | None ->
        let r =
          match shape with
          | `And ->
            buildc c pres.(i) ctx ~t:(go (i + 1))
              ~f:(fun _ -> enc_leaf ~pass:false ~clause:i)
          | `Or ->
            buildc c pres.(i) ctx
              ~t:(fun _ -> enc_leaf ~pass:true ~clause:i)
              ~f:(go (i + 1))
        in
        Hashtbl.add c.chain_memo (i, ctx) r;
        r
  in
  go 0 []

(* Compile one filter, tagging leaves with the deciding top-level
   clause so the explanation falls out of the decision walk.  Clause
   order and numbering match [Filter_eval.explain]: an OR filter
   reaches leaf (true, i) iff clause i is the first passing disjunct;
   an AND filter reaches leaf (false, i) iff clause i is the first
   failing conjunct. *)
let compile_filter b (expr : Filter.expr) : int * shape =
  match expr with
  | Filter.True -> (enc_leaf ~pass:true ~clause:(-1), Sh_true)
  | Filter.False -> (enc_leaf ~pass:false ~clause:(-1), Sh_false)
  | Filter.Or _ ->
    let cs = disjuncts expr in
    let pres = Array.of_list (List.map lower cs) in
    let root =
      try
        chain (cbuilder b pres) pres ~shape:`Or
          ~final:(enc_leaf ~pass:false ~clause:(-1))
      with Too_wide ->
        let rec go i = function
          | [] -> enc_leaf ~pass:false ~clause:(-1)
          | p :: rest ->
            build b p ~t:(enc_leaf ~pass:true ~clause:i) ~f:(go (i + 1) rest)
        in
        go 0 (Array.to_list pres)
    in
    (root, Sh_or (Array.of_list (List.map Filter.to_string cs)))
  | Filter.And _ ->
    let cs = conjuncts expr in
    let pres = Array.of_list (List.map lower cs) in
    let root =
      try
        chain (cbuilder b pres) pres ~shape:`And
          ~final:(enc_leaf ~pass:true ~clause:(-1))
      with Too_wide ->
        let rec go i = function
          | [] -> enc_leaf ~pass:true ~clause:(-1)
          | p :: rest ->
            build b p ~t:(go (i + 1) rest) ~f:(enc_leaf ~pass:false ~clause:i)
        in
        go 0 (Array.to_list pres)
    in
    (root, Sh_and (Array.of_list (List.map Filter.to_string cs)))
  | e ->
    let p = lower e in
    let t = enc_leaf ~pass:true ~clause:(-1)
    and f = enc_leaf ~pass:false ~clause:(-1) in
    let root =
      try buildc (cbuilder b [| p |]) p [] ~t:(fun _ -> t) ~f:(fun _ -> f)
      with Too_wide -> build b p ~t ~f
    in
    (root, Sh_single (Filter.to_string e))

let of_manifest ?(env = Filter_eval.pure_env) ?cache_size ?generation
    (manifest : Perm.manifest) : t =
  let b = new_builder () in
  let roots = Array.make Token.count absent in
  let shapes = Array.make Token.count Sh_false in
  List.iter
    (fun (p : Perm.t) ->
      let root, shape = compile_filter b p.Perm.filter in
      roots.(Token.index p.Perm.token) <- root;
      shapes.(Token.index p.Perm.token) <- shape)
    manifest;
  let cache =
    match cache_size with
    | None -> None
    | Some max_entries ->
      Some (Decision_cache.create ~name:"automaton" ~max_entries ?generation manifest)
  in
  let tok = Array.of_list Token.all in
  { tests = Array.sub b.b_tests 0 b.n;
    on_true = Array.sub b.b_true 0 b.n;
    on_false = Array.sub b.b_false 0 b.n;
    roots;
    shapes;
    env;
    cache;
    deny_missing =
      Array.map
        (fun t -> Api.Deny ("missing permission " ^ Token.to_string t))
        tok;
    deny_reject =
      Array.map
        (fun t -> Api.Deny ("permission filter rejects call: " ^ Token.to_string t))
        tok;
    built =
      { nodes = b.n;
        shared = b.shared;
        collapsed = b.collapsed;
        tokens = List.length manifest };
    checks = 0;
    denials = 0 }

(* Evaluation ------------------------------------------------------------------

   The per-call context: the call's filter-relevant attributes
   projected into one small record — unboxed ints for the scalar
   dimensions, the match fields shared with the call itself.  Built
   either straight off the call (the hot path — no [Attrs.t] unless an
   ownership or slow-fallback test forces one), or from a
   caller-supplied [Attrs.t] (the decision-cache eval callback and
   [eval_token], whose callers already paid for the attributes).

   One young-generation allocation per governed call and no shared
   mutable state is the whole concurrency story: any number of threads
   can [check] against one automaton without locks, pools or fences.
   (A pooled mutable scratch was measurably worse: the pool costs two
   atomic operations per call, and a heap-resident scratch turns every
   pointer-field store into a write barrier.) *)

type ctx = {
  call : Api.call;
  mutable attrs : Attrs.t option;
      (* lazy [Attrs.of_call call]; pre-set on the attrs path *)
  m : Shield_openflow.Match_fields.t option;
  has_hdr : bool;
  ins_del : bool;  (* kind is insert/delete flow *)
  insert_add : bool;  (* insert with command Add *)
  owner_applies : bool;  (* insert/delete kind or cookie set *)
  prio : int;  (* -1 = call has no priority *)
  dpid : int;  (* [dpid_absent] = none *)
  from_pkt_in : int;  (* -1 absent / 0 false / 1 true *)
  stats_lv : int;  (* -1 = call has no stats level *)
}

let ctx0 =
  { call = Api.Read_topology;
    attrs = None;
    m = None;
    has_hdr = false;
    ins_del = false;
    insert_add = false;
    owner_applies = false;
    prio = -1;
    dpid = dpid_absent;
    from_pkt_in = -1;
    stats_lv = -1 }

(* Mirrors [Attrs.of_call] + [Attrs.has_header_dimension] without
   building the record (property-tested against the engine, which does
   build it). *)
let ctx_of_call (call : Api.call) : ctx =
  match call with
  | Api.Install_flow (dpid, fm) ->
    { call;
      attrs = None;
      m = Some fm.Shield_openflow.Flow_mod.match_;
      has_hdr = true;
      ins_del = true;
      insert_add =
        (match fm.Shield_openflow.Flow_mod.command with
        | Shield_openflow.Flow_mod.Add -> true
        | _ -> false);
      owner_applies = true;
      prio = fm.Shield_openflow.Flow_mod.priority;
      dpid;
      from_pkt_in = -1;
      stats_lv = -1 }
  | Api.Read_flow_table { dpid; pattern } ->
    { ctx0 with
      call;
      m = pattern;
      has_hdr = true;
      dpid = (match dpid with Some d -> d | None -> dpid_absent) }
  | Api.Read_stats req ->
    let m = req.Shield_openflow.Stats.match_filter in
    { ctx0 with
      call;
      m;
      has_hdr = m <> None;
      dpid =
        (match req.Shield_openflow.Stats.dpid_filter with
        | Some d -> d
        | None -> dpid_absent);
      stats_lv = stats_code req.Shield_openflow.Stats.level }
  | Api.Send_packet_out { dpid; from_pkt_in; _ } ->
    { ctx0 with
      call;
      has_hdr = true;
      dpid;
      from_pkt_in = (if from_pkt_in then 1 else 0) }
  | Api.Modify_topology change ->
    { ctx0 with
      call;
      dpid =
        (match change with
        | Api.Add_switch d | Api.Remove_switch d -> d
        | Api.Add_link (a, _) | Api.Remove_link (a, _) ->
          a.Shield_net.Topology.dpid) }
  | Api.Syscall (Api.Net_connect _) -> { ctx0 with call; has_hdr = true }
  | _ -> { ctx0 with call }

let ctx_of_attrs (attrs : Attrs.t) : ctx =
  let ins_del =
    match attrs.Attrs.kind with
    | Attrs.K_insert_flow | Attrs.K_delete_flow -> true
    | _ -> false
  in
  { call = Api.Read_topology (* never consulted: [attrs] is pre-set *);
    attrs = Some attrs;
    m = attrs.Attrs.match_;
    has_hdr = Attrs.has_header_dimension attrs;
    ins_del;
    insert_add =
      ((match attrs.Attrs.kind with Attrs.K_insert_flow -> true | _ -> false)
      && attrs.Attrs.flow_command = Some Shield_openflow.Flow_mod.Add);
    owner_applies = ins_del || attrs.Attrs.cookie <> None;
    prio = (match attrs.Attrs.priority with Some p -> p | None -> -1);
    dpid = (match attrs.Attrs.dpid with Some d -> d | None -> dpid_absent);
    from_pkt_in =
      (match attrs.Attrs.from_pkt_in with
      | Some b -> if b then 1 else 0
      | None -> -1);
    stats_lv =
      (match attrs.Attrs.stats_level with
      | Some l -> stats_code l
      | None -> -1) }

let the_attrs cx =
  match cx.attrs with
  | Some a -> a
  | None ->
    let a = Attrs.of_call cx.call in
    cx.attrs <- Some a;
    a

(* Match-field projections — the [Some match_] branch of
   [Attrs.field_value], inlined and allocation-free.  Exact-int fields
   use [mint_absent] as the "unconstrained" sentinel (field payloads
   are non-negative codes, ports and addresses). *)

let mint_absent = min_int

let mint (m : Shield_openflow.Match_fields.t) fld : int =
  let open Shield_openflow in
  match fld with
  | 2 -> (match m.Match_fields.tp_src with Some v -> v | None -> mint_absent)
  | 3 -> (match m.Match_fields.tp_dst with Some v -> v | None -> mint_absent)
  | 4 -> (match m.Match_fields.dl_src with Some v -> v | None -> mint_absent)
  | 5 -> (match m.Match_fields.dl_dst with Some v -> v | None -> mint_absent)
  | 6 -> (match m.Match_fields.in_port with Some v -> v | None -> mint_absent)
  | 7 -> (
    match m.Match_fields.dl_type with
    | Some ty -> Types.eth_type_code ty
    | None -> mint_absent)
  | 8 -> (
    match m.Match_fields.nw_proto with
    | Some p -> Types.ip_proto_code p
    | None -> mint_absent)
  | _ -> (match m.Match_fields.dl_vlan with Some v -> v | None -> mint_absent)

let mip (m : Shield_openflow.Match_fields.t) fld =
  if fld = 0 then m.Shield_openflow.Match_fields.nw_src
  else m.Shield_openflow.Match_fields.nw_dst

let rec mem_sorted (a : int array) v lo hi =
  if lo >= hi then false
  else
    let mid = (lo + hi) / 2 in
    let x = Array.unsafe_get a mid in
    if x = v then true
    else if x < v then mem_sorted a v (mid + 1) hi
    else mem_sorted a v lo mid

(* One test against the context.  Fields backed by a match record get
   the direct projection (codes as in [Attrs.field_value]: an ip_match
   is a range, a set int field an exact int, an unset one
   unconstrained — never no-dimension); calls whose header dimension
   lives elsewhere (packet-out payloads, syscall endpoints) take the
   [Attrs.field_value] detour, which is where the no-dimension case
   can still arise. *)
let eval_test t cx (test : test) =
  match test with
  | T_pred_ip { fld; fmask; fval_masked; fval_raw } ->
    (not cx.has_hdr)
    ||
    (match cx.m with
    | Some m ->
      if fld <= 1 then
        (match mip m fld with
        | Some im ->
          (* Call range ⊆ filter range, all in untagged ints. *)
          fmask land (u32 im.Shield_openflow.Match_fields.mask lxor 0xFFFFFFFF)
          = 0
          && u32 im.Shield_openflow.Match_fields.addr land fmask = fval_masked
        | None -> false)
      else
        let v = mint m fld in
        v <> mint_absent && v land 0xFFFFFFFF = fval_raw
    | None -> (
      match Attrs.field_value (the_attrs cx) field_of_index.(fld) with
      | Attrs.No_dimension -> true
      | Attrs.Unconstrained -> false
      | Attrs.Ip_range (a, mk) ->
        fmask land (u32 mk lxor 0xFFFFFFFF) = 0
        && u32 a land fmask = fval_masked
      | Attrs.Exact_int v -> v land 0xFFFFFFFF = fval_raw))
  | T_pred_int { fld; v } ->
    (not cx.has_hdr)
    ||
    (match cx.m with
    | Some m ->
      (* An ip-typed field can never equal an exact int; an unset field
         is unconstrained.  Both fail the predicate. *)
      fld > 1
      &&
      let x = mint m fld in
      x <> mint_absent && x = v
    | None -> (
      match Attrs.field_value (the_attrs cx) field_of_index.(fld) with
      | Attrs.No_dimension -> true
      | Attrs.Unconstrained | Attrs.Ip_range _ -> false
      | Attrs.Exact_int x -> x = v))
  | T_wildcard { fld; mask } ->
    (not cx.ins_del)
    ||
    (match cx.m with
    | Some m ->
      if fld <= 1 then
        (match mip m fld with
        | Some im -> u32 im.Shield_openflow.Match_fields.mask land mask = 0
        | None -> true)
      else mint m fld = mint_absent || mask = 0
    | None -> (
      match Attrs.field_value (the_attrs cx) field_of_index.(fld) with
      | Attrs.No_dimension | Attrs.Unconstrained -> true
      | Attrs.Ip_range (_, mk) -> u32 mk land mask = 0
      | Attrs.Exact_int _ -> mask = 0))
  | T_prio { lo; hi } -> cx.prio < 0 || (lo <= cx.prio && cx.prio <= hi)
  | T_budget n ->
    (not cx.insert_add)
    || t.env.Filter_eval.rule_count
         (if cx.dpid = dpid_absent then None else Some cx.dpid)
       < n
  | T_owner ->
    (not cx.owner_applies) || t.env.Filter_eval.owns_all_targeted (the_attrs cx)
  | T_pkt_out_replay -> cx.from_pkt_in <> 0
  | T_stats_level code -> cx.stats_lv < 0 || cx.stats_lv = code
  | T_dpid_mem switches ->
    cx.dpid = dpid_absent || Filter.Int_set.mem cx.dpid switches
  | T_int_mem { fld; vals } ->
    (not cx.has_hdr)
    ||
    (match cx.m with
    | Some m ->
      fld > 1
      &&
      let x = mint m fld in
      x <> mint_absent && mem_sorted vals x 0 (Array.length vals)
    | None -> (
      match Attrs.field_value (the_attrs cx) field_of_index.(fld) with
      | Attrs.No_dimension -> true
      | Attrs.Unconstrained | Attrs.Ip_range _ -> false
      | Attrs.Exact_int x -> mem_sorted vals x 0 (Array.length vals)))
  | T_slow s -> Filter_eval.eval_singleton t.env s (the_attrs cx)

(* The decision walk: chase indexes until a (negative) leaf. *)
let walk t cx root =
  let idx = ref root in
  while !idx >= 0 do
    let i = !idx in
    idx :=
      if eval_test t cx (Array.unsafe_get t.tests i) then
        Array.unsafe_get t.on_true i
      else Array.unsafe_get t.on_false i
  done;
  !idx

(* Public checking ------------------------------------------------------------ *)

let eval_token t token attrs =
  let root = t.roots.(Token.index token) in
  root <> absent && leaf_pass (walk t (ctx_of_attrs attrs) root)

let granted t token = t.roots.(Token.index token) <> absent

(* Decide one call; counts the denial but not the check (callers batch
   the check counter).  A context is built only where the decision
   actually needs attributes: never for ungoverned or ungranted calls,
   and only on a miss when a cache fronts the walk. *)
let decide t (call : Api.call) : Api.decision =
  let ti = Dispatch.token_index_of_call call in
  if ti < 0 then Api.Allow
  else
    let root = Array.unsafe_get t.roots ti in
    if root = absent then begin
      t.denials <- t.denials + 1;
      Array.unsafe_get t.deny_missing ti
    end
    else
      let pass =
        match t.cache with
        | None -> leaf_pass (walk t (ctx_of_call call) root)
        | Some cache ->
          Decision_cache.check cache ~token:(Dispatch.token_of_index ti) ~call
            ~eval:(fun attrs -> leaf_pass (walk t (ctx_of_attrs attrs) root))
      in
      if pass then Api.Allow
      else begin
        t.denials <- t.denials + 1;
        Array.unsafe_get t.deny_reject ti
      end

let check t (call : Api.call) : Api.decision =
  t.checks <- t.checks + 1;
  decide t call

let check_batch t (calls : Api.call array) : Api.decision array =
  let n = Array.length calls in
  if n = 0 then [||]
  else begin
    t.checks <- t.checks + n;
    let out = Array.make n Api.Allow in
    let denials = ref 0 in
    (match t.cache with
    | Some _ ->
      (* A cache in front means the walk is already amortized; keep the
         straightforward loop (decide counts its own denials). *)
      for i = 0 to n - 1 do
        let call = Array.unsafe_get calls i in
        if i > 0 && call == Array.unsafe_get calls (i - 1) then begin
          (* Storms repeat the same boxed event: reuse the verdict (the
             counters still see every call). *)
          let d = Array.unsafe_get out (i - 1) in
          (match d with Api.Deny _ -> incr denials | _ -> ());
          Array.unsafe_set out i d
        end
        else out.(i) <- decide t call
      done
    | None ->
      (* The batch fast loop: [decide] inlined with the per-call
         bookkeeping hoisted — denials tallied locally, [Allow] slots
         left as the array's fill, repeated boxed events (storms)
         reusing the previous verdict. *)
      for i = 0 to n - 1 do
        let call = Array.unsafe_get calls i in
        if i > 0 && call == Array.unsafe_get calls (i - 1) then begin
          let d = Array.unsafe_get out (i - 1) in
          match d with
          | Api.Deny _ ->
            incr denials;
            Array.unsafe_set out i d
          | Api.Allow -> ()
        end
        else
          let ti = Dispatch.token_index_of_call call in
          if ti >= 0 then begin
            let root = Array.unsafe_get t.roots ti in
            if root = absent then begin
              incr denials;
              Array.unsafe_set out i (Array.unsafe_get t.deny_missing ti)
            end
            else if not (leaf_pass (walk t (ctx_of_call call) root)) then begin
              incr denials;
              Array.unsafe_set out i (Array.unsafe_get t.deny_reject ti)
            end
          end
      done);
    t.denials <- t.denials + !denials;
    out
  end

let check_explained t (call : Api.call) : Api.decision * Api.check_info =
  t.checks <- t.checks + 1;
  let info ?explain cache = { Api.cache; explain } in
  match Dispatch.token_of_call call with
  | None ->
    (Api.Allow, info ~explain:"no permission token governs this call" Api.Uncached)
  | Some token -> (
    let ti = Token.index token in
    let tok = Token.to_string token in
    let root = t.roots.(ti) in
    if root = absent then begin
      t.denials <- t.denials + 1;
      ( t.deny_missing.(ti),
        info
          ~explain:(Printf.sprintf "token %s: not granted by the manifest" tok)
          Api.Uncached )
    end
    else begin
      let leaf = walk t (ctx_of_call call) root in
      let pass = leaf_pass leaf in
      let cache_outcome =
        match t.cache with
        | None -> Api.Uncached
        | Some cache ->
          (* Consult (and fill) the cache exactly as [check] would, so
             explained checks keep the same provenance counters.  The
             cache never disagrees with the walk (docs/CACHING.md). *)
          let _, o =
            Decision_cache.check_outcome cache ~token ~call ~eval:(fun attrs ->
                leaf_pass (walk t (ctx_of_attrs attrs) root))
          in
          Decision_cache.to_cache_outcome o
      in
      let why =
        match t.shapes.(ti) with
        | Sh_true -> "filter is TRUE (unconditional grant)"
        | Sh_false -> "filter is FALSE (granted nowhere)"
        | Sh_or cs ->
          let n = Array.length cs in
          if pass then
            Printf.sprintf "clause %d/%d passed: %s" (leaf_clause leaf + 1) n
              cs.(leaf_clause leaf)
          else Printf.sprintf "none of %d clauses passed" n
        | Sh_and cs ->
          let n = Array.length cs in
          if pass then Printf.sprintf "all %d clauses passed" n
          else
            Printf.sprintf "clause %d/%d failed: %s" (leaf_clause leaf + 1) n
              cs.(leaf_clause leaf)
        | Sh_single s ->
          Printf.sprintf "filter %s: %s"
            (if pass then "passed" else "failed")
            s
      in
      let explain = Printf.sprintf "token %s: %s" tok why in
      if pass then (Api.Allow, info ~explain cache_outcome)
      else begin
        t.denials <- t.denials + 1;
        (t.deny_reject.(ti), info ~explain cache_outcome)
      end
    end)

let build_stats t = t.built
let stats t = (t.checks, t.denials)
let cache_stats t = Option.map Decision_cache.stats t.cache
