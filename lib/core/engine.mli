(** The permission engine (PE, §VI-B).

    One engine guards one app: it holds the reconciled manifest,
    answers allow/deny for every API call, tracks ownership and rule
    budgets in an {!Ownership} store shared with the other apps'
    engines, enforces transactional call groups, translates
    virtual-topology calls and vets read results for visibility.
    {!checker} packages all of it as a controller-pluggable
    {!Shield_controller.Api.checker}. *)

open Shield_net
open Shield_controller

type t

val create :
  ?topo:Topology.t ->
  ?record_state:bool ->
  ?cache_size:int ->
  ?strategy:[ `Interpreted | `Automaton ] ->
  ownership:Ownership.t ->
  app_name:string ->
  cookie:int ->
  Perm.manifest ->
  t
(** Build an engine.  [ownership] must be shared across all engines of
    one deployment; [topo] enables virtual-topology translation when
    the manifest requests it; [record_state:false] disables ownership
    recording (pure stateless checking, as the paper characterises the
    engine for its Figure-5 microbenchmark).  [cache_size] enables a
    {!Decision_cache} of that capacity in front of filter evaluation:
    stateless filter decisions are memoized unconditionally, stateful
    ones (OWN_FLOWS, MAX_RULE_COUNT) are invalidated by [ownership]
    mutations via its generation counter — decisions are bit-for-bit
    identical with the uncached engine (see docs/CACHING.md).

    [strategy] selects how per-token filters are evaluated:
    [`Interpreted] (default) walks the filter AST via
    {!Filter_eval.eval}; [`Automaton] compiles the manifest once into
    an {!Automaton} decision DAG and dispatches into it — same
    decisions (property-tested), faster hot path, and a batched fast
    path for {!check_batch}.  Everything else (cache, virtual
    topology, ownership recording, explanations) is
    strategy-agnostic.

    @raise Invalid_argument on manifests with unresolved stub macros
    (reconciliation must run first) and on virtual-topology manifests
    without a [topo]. *)

val token_of_call : Api.call -> Token.t option
(** Which token a call requires; [None] = no permission needed
    (inter-app publications and their receipt). *)

val check : t -> Api.call -> Api.decision
(** Check one call.  Approved flow-mods update the ownership store
    (unless [record_state:false]). *)

val check_batch : t -> Api.call array -> Api.decision array
(** Check a burst of calls: one verdict per call, in order, each
    decided exactly as {!check} would at that position (same counters,
    same deny messages).  With [`Automaton] strategy and no cache,
    virtual topology, or state recording, the burst is decided by one
    {!Automaton.check_batch} pass, which amortizes per-call dispatch
    and scratch setup; otherwise it degrades to a loop over {!check}. *)

val check_explained : t -> Api.call -> Api.decision * Api.check_info
(** {!check} with provenance: the identical decision (same ownership
    recording, counters and [Deny] messages), plus which cache level
    served it and a prose account of the deciding token and top-level
    filter clause ({!Filter_eval.explain}).  This is what the engine's
    {!checker} exposes as its [explain] entry point. *)

val check_transaction : t -> Api.call list -> (unit, int * string) result
(** Transactional check (§VI-B2): every call must pass; earlier calls'
    state is visible to later ones; everything rolls back on a denial.
    [Error (i, why)] identifies the first offending call. *)

val rewrite : t -> Api.call -> Api.call list
(** Virtual-topology translation (§VI-B1): calls addressed to the big
    switch become per-hop physical calls / per-member fan-outs. *)

val merge_results : Api.call -> Api.result list -> Api.result
(** Merge the results of rewritten calls back into one. *)

val vet_result : t -> Api.call -> Api.result -> Api.result
(** Visibility filtering of read results: flow entries, topology view
    and statistics are restricted to what the filters allow, and
    aggregated onto the big switch under a virtual topology. *)

val observe : t -> Api.state_change -> unit
(** React to controller state changes (flow expirations leave the
    ownership store). *)

val granted : t -> Api.capability -> bool
(** Load-time capability test (§VIII-B): is the token behind the
    capability granted at all, whatever its filters? *)

val checker : t -> Api.checker
(** The engine as a pluggable checker for
    {!Shield_controller.Runtime}. *)

val stats : t -> int * int
(** (checks performed, denials). *)

val cache_stats : t -> Metrics.cache_stats option
(** Decision-cache counters; [None] when the engine was created without
    [cache_size]. *)

val automaton_stats : t -> Automaton.build_stats option
(** Decision-DAG construction stats (node/sharing counts); [None]
    unless the engine was created with [~strategy:`Automaton]. *)

val reset_stats : t -> unit
