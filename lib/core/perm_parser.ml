(* Recursive-descent parser for the SDNShield permission language
   (paper Appendix A).

     perm_stmt   := PERM token [LIMITING filter_expr]
     filter_expr := filter_expr AND/OR filter | NOT filter_expr
                  | ( filter_expr ) | filter

   with the filter categories of §IV-B.  Identifiers that are not
   keywords parse as macro stubs (the customization hooks of §V-A),
   e.g. [PERM network_access LIMITING AdminRange].

   Manifests arrive from an untrusted app market, so the parser is
   hardened for admission (docs/VETTING.md): recursion depth is capped
   (a 100k-deep NOT/paren bomb raises [Parse_error] after [max_nesting]
   frames instead of overflowing the stack), every error carries its
   source line, and productions tick the ambient {!Budget}. *)

open Lexer

(** Hard cap on grammar nesting, far below the OCaml stack limit.  The
    ambient {!Budget} may reject earlier (its [max_depth]); this cap
    also protects un-vetted callers. *)
let max_nesting = 2_000

let check_nesting s depth =
  Budget.depth depth;
  if depth > max_nesting then
    fail_at s (Printf.sprintf "nesting deeper than %d" max_nesting)

let keywords =
  [ "PERM"; "LIMITING"; "AND"; "OR"; "NOT"; "MASK"; "WILDCARD"; "ACTION";
    "DROP"; "FORWARD"; "MODIFY"; "OWN_FLOWS"; "ALL_FLOWS"; "MAX_PRIORITY";
    "MIN_PRIORITY"; "MAX_RULE_COUNT"; "FROM_PKT_IN"; "ARBITRARY"; "SWITCH";
    "LINK"; "VIRTUAL"; "AS"; "SINGLE_BIG_SWITCH"; "EXTERNAL_LINKS";
    "EVENT_INTERCEPTION"; "MODIFY_EVENT_ORDER"; "FLOW_LEVEL"; "PORT_LEVEL";
    "SWITCH_LEVEL"; "TRUE"; "FALSE"; "LET"; "ASSERT"; "EITHER"; "MEET";
    "JOIN"; "APP" ]

let is_keyword id = List.mem (String.uppercase_ascii id) keywords

let expect_field s =
  match peek s with
  | IDENT id -> (
    match Filter.field_of_string id with
    | Some f ->
      advance s;
      f
    | None -> fail_at s (Printf.sprintf "unknown field %s" id))
  | _ -> fail_at s "expected field name"

let parse_value s : Filter.value =
  match peek s with
  | INT i ->
    advance s;
    Filter.V_int i
  | IP ip ->
    advance s;
    Filter.V_ip ip
  | _ -> fail_at s "expected value"

let parse_mask s : Shield_openflow.Types.ipv4 =
  match peek s with
  | IP ip ->
    advance s;
    ip
  | INT i ->
    advance s;
    Int32.of_int i
  | _ -> fail_at s "expected mask"

(* Integer lists appear both brace-delimited ({1, 2, 3}) and bare
   (SWITCH 0,1 LINK 3,4 — the paper's Scenario 1 style). *)
let parse_int_list s =
  let braced = peek s = LBRACE in
  if braced then advance s;
  let rec more acc =
    match peek s with
    | INT i ->
      advance s;
      if peek s = COMMA then begin
        advance s;
        more (i :: acc)
      end
      else List.rev (i :: acc)
    | _ -> fail_at s "expected integer list"
  in
  let items = more [] in
  if braced then expect s RBRACE;
  Filter.Int_set.of_list items

let parse_pred s : Filter.singleton =
  let field = expect_field s in
  let value = parse_value s in
  let mask = if eat_kw s "MASK" then Some (parse_mask s) else None in
  (match (value, mask) with
  | Filter.V_int _, Some _ -> fail_at s "MASK only applies to IP-valued fields"
  | _ -> ());
  Filter.Pred { field; value; mask }

let parse_action s : Filter.singleton =
  if eat_kw s "DROP" then Filter.Action_f Filter.A_drop
  else if eat_kw s "FORWARD" then Filter.Action_f Filter.A_forward
  else if eat_kw s "MODIFY" then Filter.Action_f (Filter.A_modify (expect_field s))
  else fail_at s "expected DROP, FORWARD or MODIFY"

let parse_virt_topo s : Filter.singleton =
  if eat_kw s "SINGLE_BIG_SWITCH" then begin
    expect_kw s "LINK";
    expect_kw s "EXTERNAL_LINKS";
    Filter.Virt_topo Filter.Single_big_switch
  end
  else begin
    (* VIRTUAL { 1, 2 } AS 100, { 3 } AS 101 *)
    let rec groups acc =
      let set = parse_int_list s in
      expect_kw s "AS";
      let vid = expect_int s in
      let acc = (set, vid) :: acc in
      if peek s = COMMA && peek2 s = LBRACE then begin
        advance s;
        groups acc
      end
      else List.rev acc
    in
    Filter.Virt_topo (Filter.Switch_groups (groups []))
  end

let parse_singleton s : Filter.singleton =
  Budget.step ();
  if eat_kw s "WILDCARD" then begin
    let field = expect_field s in
    let mask = parse_mask s in
    Filter.Wildcard { field; mask }
  end
  else if eat_kw s "ACTION" then parse_action s
  else if at_kw s "DROP" || at_kw s "FORWARD" || at_kw s "MODIFY" then
    parse_action s (* ACTION prefix is optional, per the appendix grammar *)
  else if eat_kw s "OWN_FLOWS" then Filter.Owner Filter.Own_flows
  else if eat_kw s "ALL_FLOWS" then Filter.Owner Filter.All_flows
  else if eat_kw s "MAX_PRIORITY" then Filter.Max_priority (expect_int s)
  else if eat_kw s "MIN_PRIORITY" then Filter.Min_priority (expect_int s)
  else if eat_kw s "MAX_RULE_COUNT" then Filter.Max_rule_count (expect_int s)
  else if eat_kw s "FROM_PKT_IN" then Filter.Pkt_out Filter.From_pkt_in
  else if eat_kw s "ARBITRARY" then Filter.Pkt_out Filter.Arbitrary
  else if eat_kw s "SWITCH" then begin
    let switches = parse_int_list s in
    let links =
      if eat_kw s "LINK" then parse_int_list s else Filter.Int_set.empty
    in
    Filter.Phys_topo { switches; links }
  end
  else if eat_kw s "VIRTUAL" then parse_virt_topo s
  else if eat_kw s "EVENT_INTERCEPTION" then
    Filter.Callback Filter.Event_interception
  else if eat_kw s "MODIFY_EVENT_ORDER" then
    Filter.Callback Filter.Modify_event_order
  else if eat_kw s "FLOW_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Flow_level
  else if eat_kw s "PORT_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Port_level
  else if eat_kw s "SWITCH_LEVEL" then
    Filter.Stats_level Shield_openflow.Stats.Switch_level
  else
    match peek s with
    | IDENT id when Filter.field_of_string id <> None -> parse_pred s
    | IDENT id when not (is_keyword id) ->
      advance s;
      Filter.Macro id
    | _ -> fail_at s "expected a filter"

let rec parse_filter_expr ?(depth = 0) s : Filter.expr =
  let rec or_loop lhs =
    if eat_kw s "OR" then or_loop (Filter.disj lhs (parse_and s depth))
    else lhs
  in
  or_loop (parse_and s depth)

and parse_and s depth =
  let rec and_loop lhs =
    if eat_kw s "AND" then and_loop (Filter.conj lhs (parse_unary s depth))
    else lhs
  in
  and_loop (parse_unary s depth)

and parse_unary s depth =
  check_nesting s depth;
  if eat_kw s "NOT" then Filter.neg (parse_unary s (depth + 1))
  else if peek s = LPAREN then begin
    advance s;
    let e = parse_filter_expr ~depth:(depth + 1) s in
    expect s RPAREN;
    e
  end
  else if eat_kw s "TRUE" then Filter.True
  else if eat_kw s "FALSE" then Filter.False
  else Filter.Atom (parse_singleton s)

let parse_perm s : Perm.t =
  Budget.step ();
  expect_kw s "PERM";
  match peek s with
  | IDENT name -> (
    match Token.of_string name with
    | None -> fail_at s (Printf.sprintf "unknown permission token %s" name)
    | Some token ->
      advance s;
      let filter =
        if eat_kw s "LIMITING" then parse_filter_expr s else Filter.True
      in
      { Perm.token; filter })
  | _ -> fail_at s "expected permission token"

(** Parse a sequence of PERM statements up to [stop] (EOF or RBRACE). *)
let parse_perm_list s : Perm.t list =
  let rec go acc =
    if at_kw s "PERM" then go (parse_perm s :: acc) else List.rev acc
  in
  go []

(** Parse a full permission manifest from source text. *)
let manifest_of_string src : (Perm.manifest, string) result =
  try
    let s = of_string src in
    let perms = parse_perm_list s in
    match peek s with
    | EOF -> Ok (Perm.normalize perms)
    | t -> Error (Fmt.str "line %d: trailing input at %a" (line s) pp_token t)
  with
  | Parse_error msg -> Error msg
  | Lex_error msg -> Error msg

(** Parse a bare filter expression (used for filter macros in policies
    and in tests). *)
let filter_of_string src : (Filter.expr, string) result =
  try
    let s = of_string src in
    let e = parse_filter_expr s in
    match peek s with
    | EOF -> Ok e
    | t -> Error (Fmt.str "line %d: trailing input at %a" (line s) pp_token t)
  with
  | Parse_error msg -> Error msg
  | Lex_error msg -> Error msg

let manifest_exn src =
  match manifest_of_string src with
  | Ok m -> m
  | Error e -> invalid_arg ("manifest_exn: " ^ e)
