(* Admission vetting for untrusted manifests and policies.

   See vetting.mli / docs/VETTING.md for the model.  The pipeline
   deliberately reuses the production code paths (parsers, macro
   expansion, Nf conversion, Reconcile) rather than a parallel
   "checking" implementation: the budget hooks those paths already
   carry are the enforcement mechanism, and whatever the vetting run
   exercises is exactly what the runtime will execute later.

   Never-raises discipline: every entry point funnels through [run],
   which installs a fresh {!Budget} scope and converts
   [Budget.Exhausted] — and, belt-and-braces, any other exception —
   into a structured [Rejected].  [Stack_overflow] and [Out_of_memory]
   are caught too: they should be unreachable (conversions are CPS,
   structural walks are work-list based, allocation is budgeted), but
   an admission pipeline must not let a miss in that analysis take the
   controller down. *)

module M = Shield_controller.Metrics

type rejection = { stage : string; reason : string; spent : Budget.spent }
type 'a admission = {
  value : 'a;
  lint : Lint.finding list;
  certificate : Verify.certificate option;
}

type 'a verdict =
  | Admitted of 'a admission
  | Degraded of 'a admission * string list
  | Rejected of rejection

(* Verdict counters ---------------------------------------------------------- *)

let counters_mutex = Mutex.create ()
let admitted_c = ref 0
let degraded_c = ref 0
let rejected_c = ref 0
let stage_counters : (string, int ref) Hashtbl.t = Hashtbl.create 8

(* The gauge registry is the existing process-wide surface for live
   integers; a monotone counter reads as depth = hwm = count. *)
let gauge_of_counter c () = { M.depth = !c; hwm = !c }

let () =
  M.register_gauge "vet-admitted" (gauge_of_counter admitted_c);
  M.register_gauge "vet-degraded" (gauge_of_counter degraded_c);
  M.register_gauge "vet-rejected" (gauge_of_counter rejected_c)

let count_verdict (v : 'a verdict) : 'a verdict =
  Mutex.lock counters_mutex;
  (match v with
  | Admitted _ -> incr admitted_c
  | Degraded _ -> incr degraded_c
  | Rejected r ->
    incr rejected_c;
    let cell =
      match Hashtbl.find_opt stage_counters r.stage with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add stage_counters r.stage c;
        M.register_gauge ("vet-rejected:" ^ r.stage) (gauge_of_counter c);
        c
    in
    incr cell);
  Mutex.unlock counters_mutex;
  v

type stats = {
  admitted : int;
  degraded : int;
  rejected : int;
  rejected_by_stage : (string * int) list;
}

let stats () =
  Mutex.lock counters_mutex;
  let s =
    { admitted = !admitted_c;
      degraded = !degraded_c;
      rejected = !rejected_c;
      rejected_by_stage =
        Hashtbl.fold (fun st c acc -> (st, !c) :: acc) stage_counters []
        |> List.filter (fun (_, n) -> n > 0)
        |> List.sort compare }
  in
  Mutex.unlock counters_mutex;
  s

let reset_stats () =
  Mutex.lock counters_mutex;
  admitted_c := 0;
  degraded_c := 0;
  rejected_c := 0;
  Hashtbl.iter (fun _ c -> c := 0) stage_counters;
  Mutex.unlock counters_mutex

(* The guarded runner -------------------------------------------------------- *)

(* [f] returns the vetted value together with its advisory lint
   findings.  Lint installs its own nested budget scope, so a manifest
   whose *analysis* is expensive degrades the lint report (to Info
   "unverified" findings), never the admission verdict. *)
let run ?limits
    (f :
      Budget.t ->
      ('a * Lint.finding list * Verify.certificate option, rejection) result) :
    'a verdict =
  let b = Budget.create ?limits () in
  let outcome =
    Budget.with_scope b (fun () ->
      match f b with
      | r -> r
      | exception Budget.Exhausted { stage; reason; spent } ->
        Error { stage; reason; spent }
      | exception Stack_overflow ->
        Error
          { stage = Budget.stage ();
            reason = "stack overflow (unbudgeted recursion)";
            spent = Budget.spent b }
      | exception Out_of_memory ->
        Error
          { stage = Budget.stage ();
            reason = "out of memory (unbudgeted allocation)";
            spent = Budget.spent b }
      | exception exn ->
        Error
          { stage = Budget.stage ();
            reason = "internal error: " ^ Printexc.to_string exn;
            spent = Budget.spent b })
  in
  count_verdict
    (match outcome with
    | Error r -> Rejected r
    | Ok (v, lint, certificate) -> (
      let adm = { value = v; lint; certificate } in
      match Budget.notes b with
      | [] -> Admitted adm
      | notes -> Degraded (adm, notes)))

(* Pipeline stages ----------------------------------------------------------- *)

(* Structural caps use the iterative [Filter.depth]/[Filter.size]
   walks, so they are safe to call on an AST the parsers never saw
   (e.g. a depth bomb handed over a typed API).  [Budget.depth]
   both records the high-water mark and rejects past [max_depth];
   the size is charged as steps so giant-but-shallow manifests also
   drain the budget. *)
let check_filter (f : Filter.expr) =
  Budget.step ~cost:(Filter.size f) ();
  Budget.depth (Filter.depth f)

(* Probe the normal forms the inclusion checker will need.  A blow-up
   is not a rejection — Algorithm 1 answers fail-closed past the cap
   (includes -> false, satisfiable -> true) — but the administrator
   should know admission ran in that degraded mode. *)
let probe_normal_forms (f : Filter.expr) =
  (match Nf.cnf f with
  | _ -> ()
  | exception Nf.Too_large ->
    Budget.note
      "normalize: CNF blow-up; inclusion checks on this filter answer \
       fail-closed");
  match Nf.dnf f with
  | _ -> ()
  | exception Nf.Too_large ->
    Budget.note
      "normalize: DNF blow-up; inclusion checks on this filter answer \
       fail-closed"

let check_manifest (m : Perm.manifest) =
  Budget.set_stage "structure";
  List.iter (fun (p : Perm.t) -> check_filter p.Perm.filter) m;
  Budget.set_stage "normalize";
  List.iter (fun (p : Perm.t) -> probe_normal_forms p.Perm.filter) m

(* Policy structural walk.  Plain recursion is fine here: these ASTs
   only come out of [Policy_parser], whose grammar nesting is capped;
   the embedded filters (which apps can inflate) go through the
   iterative [check_filter]. *)
let rec check_perm_expr (pe : Policy.perm_expr) =
  Budget.step ();
  match pe with
  | Policy.P_var _ -> ()
  | Policy.P_block m ->
    List.iter (fun (p : Perm.t) -> check_filter p.Perm.filter) m
  | Policy.P_meet (a, b) | Policy.P_join (a, b) ->
    check_perm_expr a;
    check_perm_expr b

let rec check_assert_expr (ae : Policy.assert_expr) =
  Budget.step ();
  match ae with
  | Policy.A_cmp (l, _, r) ->
    check_perm_expr l;
    check_perm_expr r
  | Policy.A_and (a, b) | Policy.A_or (a, b) ->
    check_assert_expr a;
    check_assert_expr b
  | Policy.A_not a -> check_assert_expr a

let check_policy_structure (policy : Policy.t) =
  Budget.set_stage "structure";
  List.iter
    (fun stmt ->
      Budget.step ();
      match stmt with
      | Policy.Let (_, Policy.B_filter f) -> check_filter f
      | Policy.Let (_, Policy.B_perm pe) -> check_perm_expr pe
      | Policy.Let (_, Policy.B_app _) -> ()
      | Policy.Assert_exclusive (a, b) ->
        check_perm_expr a;
        check_perm_expr b
      | Policy.Assert ae -> check_assert_expr ae)
    policy

(* Static reference check: a variable used by an assertion but bound
   by no LET will surface at reconciliation time as a [Policy_error]
   violation on that statement.  Flagging it at admission lets the
   administrator fix the policy before any app is affected. *)
let check_policy_references (policy : Policy.t) =
  let bound =
    List.filter_map
      (function Policy.Let (v, _) -> Some v | _ -> None)
      policy
  in
  List.iter
    (fun stmt ->
      let vars =
        match stmt with
        | Policy.Let (_, Policy.B_perm pe) -> Policy.perm_expr_vars pe
        | Policy.Let _ -> []
        | Policy.Assert_exclusive (a, b) ->
          Policy.perm_expr_vars a @ Policy.perm_expr_vars b
        | Policy.Assert ae -> Policy.assert_expr_vars ae
      in
      List.iter
        (fun v ->
          if not (List.mem v bound) then
            Budget.note
              (Printf.sprintf
                 "policy: variable %s is bound by no LET; its statement \
                  will be skipped as a policy error"
                 v))
        vars)
    policy

(* Entry points -------------------------------------------------------------- *)

let vet_manifest_ast ?limits (m : Perm.manifest) : Perm.manifest verdict =
  run ?limits (fun _b ->
      check_manifest m;
      Budget.set_stage "lint";
      Ok (m, Lint.lint_manifest m, None))

let vet_manifest_compiled ?limits (m : Perm.manifest) :
    (Perm.manifest * Automaton.t) verdict =
  run ?limits (fun _b ->
      check_manifest m;
      (* Build the decision DAG inside the same scope: [Automaton]
         ticks the budget once per node, so a manifest whose compiled
         form explodes is cut off at this stage instead of costing the
         controller the blow-up at app-load time. *)
      Budget.set_stage "compile";
      let a = Automaton.of_manifest m in
      Budget.set_stage "lint";
      Ok ((m, a), Lint.lint_manifest m, None))

let vet_manifest ?limits (src : string) : Perm.manifest verdict =
  run ?limits (fun b ->
      Budget.set_stage "parse";
      match Perm_parser.manifest_of_string src with
      | Error e -> Error { stage = "parse"; reason = e; spent = Budget.spent b }
      | Ok m ->
        check_manifest m;
        Budget.set_stage "lint";
        Ok (m, Lint.lint_manifest m, None))

let vet_policy ?limits (src : string) : Policy.t verdict =
  run ?limits (fun b ->
      Budget.set_stage "parse";
      match Policy_parser.of_string src with
      | Error e -> Error { stage = "parse"; reason = e; spent = Budget.spent b }
      | Ok policy ->
        check_policy_structure policy;
        check_policy_references policy;
        Budget.set_stage "lint";
        Ok (policy, Lint.lint_policy policy, None))

let vet_and_reconcile ?limits ~(apps : (string * string) list)
    (policy : string) : Reconcile.report verdict =
  run ?limits (fun b ->
      Budget.set_stage "parse";
      let rec parse_apps acc = function
        | [] -> Ok (List.rev acc)
        | (name, src) :: rest -> (
          match Perm_parser.manifest_of_string src with
          | Error e ->
            Error
              { stage = "parse";
                reason = Printf.sprintf "manifest %s: %s" name e;
                spent = Budget.spent b }
          | Ok m -> parse_apps ((name, m) :: acc) rest)
      in
      match parse_apps [] apps with
      | Error r -> Error r
      | Ok parsed -> (
        match Policy_parser.of_string policy with
        | Error e ->
          Error
            { stage = "parse"; reason = "policy: " ^ e; spent = Budget.spent b }
        | Ok pol ->
          List.iter (fun (_, m) -> check_manifest m) parsed;
          check_policy_structure pol;
          check_policy_references pol;
          (* Reconcile sets its own "expand" / "reconcile" stages. *)
          let report = Reconcile.run ~apps:parsed pol in
          let skipped =
            List.length
              (List.filter
                 (fun (v : Reconcile.violation) ->
                   v.Reconcile.action = Reconcile.Policy_error)
                 report.Reconcile.violations)
          in
          if skipped > 0 then
            Budget.note
              (Printf.sprintf
                 "reconcile: %d statement(s) could not be evaluated and \
                  were skipped"
                 skipped);
          List.iter
            (fun (app, stubs) ->
              Budget.note
                (Printf.sprintf
                   "expand: app %s keeps unresolved stub(s) %s after policy \
                    binding"
                   app
                   (String.concat ", " stubs)))
            report.Reconcile.unresolved_macros;
          Budget.set_stage "lint";
          let manifest_macros =
            List.concat_map (fun (_, m) -> Perm.macros m) parsed
          in
          let lint =
            Lint.lint_policy ~manifest_macros pol
            @ List.concat_map
                (fun (name, m) ->
                  Lint.lint_manifest ~label:("app " ^ name) m)
                parsed
          in
          (* Post-repair certification (docs/VERIFY.md).  Verify
             installs its own nested scope but inherits this
             admission's limits, so a hostile policy cannot buy extra
             work by being verified; its exhaustion degrades the
             certificate to [Unverified], never the verdict. *)
          Budget.set_stage "verify";
          let certificate =
            Verify.verify_report ~limits:(Budget.limits b) pol report
          in
          Ok (report, lint, Some certificate)))

(* Reporting ----------------------------------------------------------------- *)

let pp_rejection ppf r =
  Fmt.pf ppf "rejected at %s: %s (%a)" r.stage r.reason Budget.pp_spent r.spent

let pp_stats ppf s =
  Fmt.pf ppf "admitted=%d degraded=%d rejected=%d" s.admitted s.degraded
    s.rejected;
  List.iter
    (fun (st, n) -> Fmt.pf ppf " rejected[%s]=%d" st n)
    s.rejected_by_stage

let verdict_label = function
  | Admitted _ -> "admitted"
  | Degraded _ -> "degraded"
  | Rejected _ -> "rejected"
