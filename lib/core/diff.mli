(** Symbolic lattice-difference analysis over permission manifests
    (docs/VERIFY.md, "Minimality").

    [diff p q] decides non-emptiness of [p \ q] — behaviour admitted by
    [p] that [q] does not admit — over the filter lattice, under the
    ambient {!Budget}:

    - {b Empty} — a {e sound} emptiness proof: Algorithm 1
      ({!Inclusion.manifest_includes}) proved [p <= q].  The lattice
      procedure is incomplete but its positive answers are trusted, so
      [Empty] certifies.
    - {b Nonempty} — one or more {e concrete witness calls}, each
      semantically confirmed by {!Filter_eval} on both sides: admitted
      by [p]'s filter, rejected by [q]'s.  Candidates are synthesized
      from the atoms of the filters under comparison (subnet boundaries
      and one-bit-outside addresses, integer off-by-ones, priority
      envelopes, topology members, action sets, stats levels), so a
      witness is never an artifact of the search heuristics.
    - {b Unknown} — neither provable nor witnessed.  Budget exhaustion,
      [Nf.Too_large] degradation, and any internal error land here:
      the operator is {e fail-closed} and never answers a false
      [Empty] past exhaustion (pinned by [test/test_diff.ml]; direction
      table in docs/VETTING.md).

    [diff] never raises — not even {!Budget.Exhausted}; exhaustion is
    absorbed into [Unknown] so callers folding many differences (the
    {!Verify} minimality pass, lint rules) degrade per-query. *)

open Shield_controller

(** One confirmed concrete call in the region under test. *)
type witness = {
  token : Token.t;
  call : Api.call;
  why_left : string;
      (** {!Filter_eval.explain}'s account of why the left manifest
          admits [call]. *)
  why_right : string;
      (** Why the right manifest rejects it ([diff]) or also admits it
          ([overlap]). *)
}

type verdict =
  | Empty  (** Sound lattice proof that the region is empty. *)
  | Nonempty of witness list  (** Nonempty; every witness confirmed. *)
  | Unknown of string  (** Fail-closed: neither proof nor witness. *)

val diff : ?max_witnesses:int -> Perm.manifest -> Perm.manifest -> verdict
(** [diff p q] — is there behaviour in [p] not in [q]?  Collects at
    most [max_witnesses] (default 4) confirmed witnesses, one per
    granted token.  Ticks the ambient {!Budget} once per candidate
    call; each per-token search is additionally hard-capped.  Never
    raises. *)

val overlap : ?max_witnesses:int -> Perm.manifest -> Perm.manifest -> verdict
(** [overlap p q] — is there behaviour admitted by {e both} sides?
    [Empty] is a sound disjointness proof
    (¬{!Inclusion.manifests_overlap}); witnesses are confirmed admitted
    by both filters.  Same budget discipline as {!diff}. *)

val find_call :
  filters:Filter.expr list ->
  Token.t ->
  goal:(Attrs.t -> bool) ->
  (Api.call * Attrs.t) option
(** The candidate-synthesis engine underneath both verdicts: first
    concrete call of [token]'s kind whose attributes satisfy [goal],
    with candidates harvested from the atoms of [filters].  One
    {!Budget.step} per candidate (so this {e can} raise
    {!Budget.Exhausted} — callers wanting the fail-closed absorption
    use {!diff}/{!overlap}); hard-capped at {!max_candidates}. *)

val max_candidates : int
(** Per-search candidate cap (4096). *)

val dedup : ?cap:int -> 'a list -> 'a list
(** Stable physical-equality coalescing with a length cap (default 8):
    keeps the first occurrence of each physically-distinct element, in
    order, and drops everything past [cap] — the bound that keeps
    witness lists in certificates and SARIF output finite under
    adversarial manifests. *)
