(** shield-verify — post-reconciliation certification (docs/VERIFY.md).

    Reconciliation {e repairs} manifests; nothing in the repair path
    proves the result actually satisfies the policy.  This pass
    re-derives every [ASSERT] obligation over the filter lattice
    (reusing {!Diff}'s sound-inclusion + witness-synthesis engine under
    the ambient {!Budget} fail-degraded discipline) and classifies
    each:

    - {b holds} — provable by Algorithm 1's sound inclusion (or, for
      mutual exclusions, by a provably empty overlap).  Because the
      lattice procedure is deliberately incomplete, only its {e
      positive} answers are trusted; a negative answer alone never
      refutes.
    - {b refuted} — a {e concrete counterexample call} was synthesized
      and semantically confirmed by {!Filter_eval}: the call is
      admitted by the manifest side yet escapes the bound (or, for
      exclusions, one call per exclusive set is admitted).  Every
      witness is additionally replayed through {!Engine}, {!Compiled}
      and {!Automaton} — a standing differential test of the three
      checkers.
    - {b unknown} — neither provable nor witnessed (incompleteness,
      budget exhaustion, [Nf.Too_large] degradation, policy evaluation
      error).  Unknown never certifies: the overall verdict degrades
      to [Unverified], exactly as Vetting fails closed.

    Negated obligations are evaluated in three-valued (Kleene) logic:
    the lattice's conservative [false] must not flip into a false
    [Certified] under [NOT], so only semantically confirmed
    refutations and sound positive proofs propagate through negation;
    everything else stays unknown.

    Orthogonally to the verdict, the certificate carries a
    {b minimality} dimension over the reconciliation repairs (the
    least-repair check; docs/VERIFY.md "Minimality"): each truncation
    is compared against the least repair the lattice admits —
    MEET(original, boundary) for boundary violations, original minus
    the second exclusive set for exclusions — via {!Diff.diff}.
    [Minimal] means every gap is provably empty; [Slack] carries
    confirmed calls the repair stripped although the policy would have
    allowed them; everything else fails closed to
    [Unknown_minimality].

    The pass never raises: internal errors, stack overflow and budget
    exhaustion all surface as [Unverified] (and
    [Unknown_minimality]). *)

open Shield_controller

(** One semantically confirmed counterexample call. *)
type witness = {
  token : Token.t;
  call : Api.call;
  admitted_by : Perm.manifest;
      (** Manifest whose filter {!Filter_eval} confirmed admits
          [call] (under {!Filter_eval.pure_env}); for slack witnesses,
          the least repair. *)
  escapes : Perm.manifest option;
      (** The bound the call provably escapes ([None] for
          mutual-exclusion witnesses, which are admitted by both
          sides instead); for slack witnesses, the over-truncated
          repaired manifest. *)
  explanation : string;  (** Deciding clauses, via {!Filter_eval.explain}. *)
}

type counterexample = {
  stmt : Policy.stmt;
  app : string option;  (** Offending app, when the obligation names one. *)
  witnesses : witness list;  (** Nonempty; two for exclusivity (one per set). *)
  detail : string;
}

type status =
  | Holds
  | Refuted_by of counterexample list  (** Nonempty. *)
  | Unknown of string

type obligation = {
  index : int;  (** Statement position in the policy. *)
  stmt : Policy.stmt;
  status : status;
}

(** Least-repair certification over the reconciliation's truncation
    repairs, folded across all of them (three-valued; [Slack]
    dominates, then [Unknown_minimality], then [Minimal]). *)
type minimality =
  | Minimal
      (** Every truncation's gap against its least repair is provably
          empty ({!Diff.diff} = [Empty]); vacuously so when no repair
          was performed. *)
  | Slack of witness list
      (** Confirmed calls ({!Diff.dedup}-bounded) allowed by the least
          repair but denied by the actual repaired manifest — repair
          stripped behaviour the policy would have kept. *)
  | Unknown_minimality of string
      (** Fail-closed: some gap was neither provably empty nor
          witnessed (incompleteness, budget exhaustion, policy
          evaluation error). *)

(** Results of the semantic cross-checks run over the synthesized
    calls (see docs/VERIFY.md). *)
type crosscheck = {
  replayed : int;
      (** Witness-side replays performed across the three checkers
          (counterexample and slack witnesses alike). *)
  checkers_agree : bool;
      (** {!Engine}, {!Compiled} and {!Automaton} each matched the
          {!Filter_eval} expectation on every replay. *)
  infer_consistent : bool;
      (** {!Infer.of_trace} over calls admitted by each app's manifest
          produced a least-privilege manifest that re-admits every one
          of those calls (the inference guarantee, checked live). *)
  infer_traced : int;  (** Calls fed to the inference cross-check. *)
  crosscheck_notes : string list;
}

type verdict =
  | Certified
  | Refuted of counterexample list  (** Nonempty, in policy order. *)
  | Unverified of string

type certificate = {
  verdict : verdict;
  minimality : minimality;
      (** Advisory least-repair dimension; does not gate the verdict
          (promote it in CI with [verify --deny --minimal]). *)
  obligations : obligation list;  (** One per [ASSERT] statement. *)
  crosscheck : crosscheck;
  spent : Budget.spent;
  notes : string list;  (** Budget degradation notes (oldest first). *)
}

val verify :
  ?limits:Budget.limits ->
  ?repairs:Reconcile.violation list ->
  apps:(string * Perm.manifest) list ->
  Policy.t ->
  certificate
(** Certify that [apps]' manifests satisfy every [ASSERT] /
    [ASSERT EITHER] obligation of the policy.  [repairs] (default
    none) are the reconciliation violations whose truncations the
    minimality dimension audits.  Installs its own nested {!Budget}
    scope (default {!Budget.default_limits}), so a caller already
    inside a scope — {!Vetting} — degrades to [Unverified] without
    burning its own admission budget.  Never raises. *)

val verify_report : ?limits:Budget.limits -> Policy.t -> Reconcile.report -> certificate
(** {!verify} over a reconciliation report's repaired manifests and
    recorded repairs — the "did repair actually work, and did it take
    no more than needed?" entry point.  Unresolved stub macros are
    noted (their atoms deny-closed under evaluation). *)

val certified : certificate -> bool

val verdict_label : certificate -> string
(** ["certified"], ["refuted"] or ["unverified"]. *)

val minimality_label : certificate -> string
(** ["minimal"], ["slack"] or ["unknown"]. *)

val json_of_certificate : certificate -> Telemetry.Json.t
(** Machine-readable rendering for the CLI's [--json] and CI. *)

val pp_witness : Format.formatter -> witness -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_minimality : Format.formatter -> minimality -> unit
val pp_certificate : Format.formatter -> certificate -> unit

(** {1 Metrics} — process-wide per-verdict counters, registered as
    gauges [verify-certified] / [verify-refuted] / [verify-unverified]
    and [verify-minimal] / [verify-slack] /
    [verify-unknown-minimality] so they ride into the {!Telemetry}
    snapshot. *)

type stats = {
  certified_n : int;
  refuted_n : int;
  unverified_n : int;
  minimal_n : int;
  slack_n : int;
  unknown_minimality_n : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit
