(** Closure-compiled permission checking — the compilation strategy of
    §III ("compiles the permission manifest into the runtime checking
    code").  Filters become closure trees with constants pre-resolved;
    the manifest becomes a token-indexed array.  Stateless-decision
    equivalence with the interpreting {!Engine} is property-tested;
    [bench/main.exe ablation-compile] measures the difference. *)

type checker_fn = Filter_eval.env -> Attrs.t -> bool

val compile_singleton : Filter.singleton -> checker_fn
val compile : Filter.expr -> checker_fn

type t

val of_manifest :
  ?env:Filter_eval.env ->
  ?cache_size:int ->
  ?generation:(unit -> int) ->
  Perm.manifest ->
  t
(** Compile once.  [env] supplies the stateful dimensions (defaults to
    {!Filter_eval.pure_env} for stateless checking).  [cache_size]
    fronts the compiled closures with a {!Decision_cache}; [generation]
    must then be the mutation counter of the state behind [env]
    (normally [fun () -> Ownership.generation store]) — its constant
    default is sound only for the pure environment. *)

val check : t -> Shield_controller.Api.call -> Shield_controller.Api.decision

val check_explained :
  t ->
  Shield_controller.Api.call ->
  Shield_controller.Api.decision * Shield_controller.Api.check_info
(** {!check} with provenance: the identical decision plus the cache
    outcome and the deciding clause of the source filter (via
    {!Filter_eval.explain}). *)

val cache_stats : t -> Shield_controller.Metrics.cache_stats option
(** Decision-cache counters; [None] without [cache_size]. *)
