(** Normal forms over filter expressions, as used by Algorithm 1
    (§V-B1): filter A goes to CNF, filter B to DNF, and singleton
    filters are compared clause-pairwise. *)

type literal = { positive : bool; atom : Filter.singleton }
type clause = literal list

exception Too_large
(** Raised when distribution exceeds [max_clauses] (clause count) or
    [max_width] (literals per clause); callers fall back to a
    conservative answer.  The guard is incremental: at most
    [max_clauses] merged clauses exist when it fires — the full
    cross-product intermediate is never materialized. *)

val default_max_width : int
(** Default cap on literals per merged clause (1024). *)

val pos : Filter.singleton -> literal
val negl : Filter.singleton -> literal
val pp_literal : Format.formatter -> literal -> unit

val cnf : ?max_clauses:int -> ?max_width:int -> Filter.expr -> clause list
(** Conjunction of disjunctive clauses.  [[]] = True; a member [[]] is
    a False clause.  [max_clauses] defaults to 4096, [max_width] to
    {!default_max_width}.  Conversion is depth-safe (CPS — a 100k-deep
    expression cannot overflow the stack) and ticks the ambient
    {!Budget}.  Conversions — including [Too_large] blow-ups — are
    memoized on [(expr, max_clauses, max_width)] in a bounded
    process-wide table; expressions are immutable, so results are
    identical to fresh conversion.  Oversized expressions bypass the
    table (counted as bypasses in the stats). *)

val dnf : ?max_clauses:int -> ?max_width:int -> Filter.expr -> clause list
(** Disjunction of conjunctive clauses.  [[]] = False; a member [] is
    a True clause.  Memoized like {!cnf}. *)

val memo_stats : unit -> Shield_controller.Metrics.cache_stats
(** Hit/miss/eviction counters of the shared CNF/DNF memo tables (also
    registered as ["nf-memo"] in the {!Shield_controller.Metrics} cache
    registry). *)

val clear_memo : unit -> unit
(** Drop both memo tables (counters are kept).  Useful for cold-start
    measurements. *)

val expr_of_cnf : clause list -> Filter.expr
(** Rebuild an expression from CNF clauses (semantics-preserving,
    property-tested). *)

val expr_of_dnf : clause list -> Filter.expr
