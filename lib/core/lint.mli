(** Shield-lint — semantic static analysis of manifests and policies
    (docs/LINTING.md).

    The reconciliation engine (§V) only reacts to violations it can
    prove; it says nothing about manifests that are wasteful, vacuous
    or internally contradictory, and administrators find out at
    enforcement time.  This pass turns the existing building blocks —
    CNF/DNF normal forms ({!Nf}), sound inclusion ({!Inclusion}),
    least-privilege inference ({!Infer}) — into pre-deployment
    diagnostics: structured findings with a rule id, a severity, a
    location and a suggested fix.

    Lint is {e advisory}: it never rejects an input and never raises.
    Every entry point installs its own {!Budget} scope and follows the
    same fail-degraded discipline as admission vetting — a rule whose
    analysis blows past the budget (normal-form [Too_large], step/
    clause/deadline exhaustion) reports an [Info] "unverified" finding
    for that rule instead of crashing or hanging, and the remaining
    rules still run.

    Findings are counted per rule and severity in the
    {!Shield_controller.Metrics} gauge registry (names
    [lint-error:<rule>], [lint-warn:<rule>], [lint-info:<rule>]), so
    lint pressure shows up in [Telemetry.snapshot], the Prometheus
    export and [Runtime.pp_report] next to admission verdicts. *)

(** {1 Rule catalogue} *)

type rule =
  | Unsatisfiable_filter
      (** A conjunctive (DNF) clause of a permission filter demands two
          range-disjoint singletons on the same dimension
          ({!Inclusion.singleton_disjoint}) or complementary literals:
          no call that actually carries the dimension can satisfy it. *)
  | Vacuous_filter
      (** A non-trivial filter (or one of its CNF clauses) is implied
          by [true] — e.g. [x OR NOT x] after normalisation — so the
          refinement does not restrict anything. *)
  | Shadowed_clause
      (** A DNF clause of a filter is included by an earlier clause of
          the same expression: dead syntax that cannot change the
          decision. *)
  | Redundant_refinement
      (** A token's filter only inspects dimensions that calls under
          that token never carry; under the vacuous-pass convention
          (§IV-B) every call passes, so the grant is effectively
          unrestricted while looking restricted. *)
  | Over_privilege
      (** The manifest strictly exceeds the least-privilege manifest
          {!Infer.of_trace} synthesises from a supplied behaviour
          trace: tokens never used, or filters strictly wider than the
          observed envelope.  Only runs when a trace is supplied. *)
  | Dead_binding
      (** A policy [LET] binding (permission set, app reference or
          stub macro) that no later statement — and, if supplied, no
          app manifest — ever references. *)
  | Self_meet_join
      (** [x MEET x] / [x JOIN x]: a lattice operation whose operands
          are the same expression is a no-op. *)
  | Overlapping_exclusive
      (** The two sides of [ASSERT EITHER p OR q] share allowed
          behaviour; reconciliation would silently truncate the
          overlap from whichever app possesses the second side. *)

val all_rules : rule list
(** Catalogue order — the order findings are produced in. *)

val rule_id : rule -> string
(** Stable kebab-case id, e.g. ["unsatisfiable-filter"]. *)

val rule_of_id : string -> rule option
val rule_doc : rule -> string
(** One-line description (SARIF rule metadata, [--help]). *)

(** {1 Findings} *)

type severity = Error | Warn | Info

val severity_label : severity -> string
(** ["error"], ["warn"], ["info"]. *)

val severity_of_label : string -> severity option

type finding = {
  rule : rule;
  severity : severity;
  location : string;
      (** Human-readable anchor, e.g. ["PERM insert_flow, clause 3"]
          or ["statement 2 (LET x = ...)"]. *)
  message : string;
  suggestion : string option;
  witnesses : Diff.witness list;
      (** Concrete calls confirming the claim, where the {!Diff}
          engine could synthesize them — a call admitted by the grant
          but outside the least-privilege envelope
          ([Over_privilege]), or admitted by both [EITHER] sides
          ([Overlapping_exclusive]).  Deduplicated and capped
          ({!Diff.dedup}); empty when the rule's claim is purely
          lattice-derived or witness synthesis degraded under the
          budget. *)
}

val count : severity -> finding list -> int

val gate_count : severity -> finding list -> int
(** Like {!count}, but witness-bearing findings collapse to one per
    rule — the number a CI [--deny] gate should key on, so upgrading
    a rule's findings with witness calls can never flip an existing
    gate. *)

val max_severity : finding list -> severity option
val has_rule : rule -> finding list -> bool

(** {1 Analysis passes}

    Both passes never raise and are deterministic.  [limits] bounds
    the whole pass (default {!Budget.default_limits}); the scope is
    installed internally, so callers inside another budget scope (the
    vetting pipeline) are not charged for lint work. *)

val lint_manifest :
  ?rules:rule list ->
  ?limits:Budget.limits ->
  ?label:string ->
  ?trace:Shield_controller.Api.call list ->
  Perm.manifest ->
  finding list
(** Run the manifest rules.  [label] prefixes every location (used by
    {!Vetting.vet_and_reconcile} to name the app).  [trace] enables the
    over-privilege audit against {!Infer.of_trace}[ trace]. *)

val lint_policy :
  ?rules:rule list ->
  ?limits:Budget.limits ->
  ?manifest_macros:string list ->
  Policy.t ->
  finding list
(** Run the policy rules.  [manifest_macros] lists the developer stubs
    appearing in the app manifests this policy will bind: a filter-
    macro [LET] in that list is live even if the policy itself never
    references it.  Without it, unreferenced filter macros report at
    [Info] (the manifests are unseen) instead of [Warn]. *)

(** {1 Counters} *)

val stats : unit -> (string * int) list
(** Per-rule/severity finding counts since start (or
    {!reset_counters}), sorted by name — the same numbers the
    [lint-<severity>:<rule>] gauges export. *)

val reset_counters : unit -> unit

(** {1 Rendering} *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit

val to_sarif : ?uri:string -> finding list -> string
(** SARIF-shaped JSON (one run, driver ["shield-lint"], rule metadata
    for every catalogue rule, one result per finding with the location
    as a logical location).  Round-trips through
    {!Shield_controller.Telemetry.Json.of_string}. *)
