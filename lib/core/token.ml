(* Permission tokens (§IV-A, Table II).

   Tokens are the coarse-grained privileges, organised along two
   dimensions — SDN resource × action — plus the host-system tokens
   that bound an app's syscall surface.  They are designed orthogonal:
   no token implies another. *)

type t =
  (* Flow table *)
  | Read_flow_table
  | Insert_flow  (** Includes rule modification, per Table II. *)
  | Delete_flow
  | Flow_event
  (* Topology *)
  | Visible_topology
  | Modify_topology
  | Topology_event
  (* Statistics & errors *)
  | Read_statistics
  | Error_event
  (* Packet-in / packet-out *)
  | Read_payload
  | Send_pkt_out
  | Pkt_in_event
  (* Host system *)
  | Host_network
  | File_system
  | Process_runtime

let all =
  [ Read_flow_table; Insert_flow; Delete_flow; Flow_event; Visible_topology;
    Modify_topology; Topology_event; Read_statistics; Error_event;
    Read_payload; Send_pkt_out; Pkt_in_event; Host_network; File_system;
    Process_runtime ]

let to_string = function
  | Read_flow_table -> "read_flow_table"
  | Insert_flow -> "insert_flow"
  | Delete_flow -> "delete_flow"
  | Flow_event -> "flow_event"
  | Visible_topology -> "visible_topology"
  | Modify_topology -> "modify_topology"
  | Topology_event -> "topology_event"
  | Read_statistics -> "read_statistics"
  | Error_event -> "error_event"
  | Read_payload -> "read_payload"
  | Send_pkt_out -> "send_pkt_out"
  | Pkt_in_event -> "pkt_in_event"
  | Host_network -> "host_network"
  | File_system -> "file_system"
  | Process_runtime -> "process_runtime"

(** Parse a token name.  The paper's prose and examples use a few
    synonyms ([network_access], [read_topology], [send_packet_out]);
    they are accepted here so the paper's policies parse verbatim. *)
let of_string s =
  match String.lowercase_ascii s with
  | "read_flow_table" -> Some Read_flow_table
  | "insert_flow" -> Some Insert_flow
  | "delete_flow" -> Some Delete_flow
  | "flow_event" -> Some Flow_event
  | "visible_topology" | "read_topology" -> Some Visible_topology
  | "modify_topology" -> Some Modify_topology
  | "topology_event" -> Some Topology_event
  | "read_statistics" -> Some Read_statistics
  | "error_event" -> Some Error_event
  | "read_payload" -> Some Read_payload
  | "send_pkt_out" | "send_packet_out" -> Some Send_pkt_out
  | "pkt_in_event" -> Some Pkt_in_event
  | "host_network" | "network_access" -> Some Host_network
  | "file_system" -> Some File_system
  | "process_runtime" -> Some Process_runtime
  | _ -> None

let count = List.length all

(* Declaration-order index, for token-indexed dispatch arrays on the
   checking hot path (a match compiles to a constant-time jump). *)
let index = function
  | Read_flow_table -> 0
  | Insert_flow -> 1
  | Delete_flow -> 2
  | Flow_event -> 3
  | Visible_topology -> 4
  | Modify_topology -> 5
  | Topology_event -> 6
  | Read_statistics -> 7
  | Error_event -> 8
  | Read_payload -> 9
  | Send_pkt_out -> 10
  | Pkt_in_event -> 11
  | Host_network -> 12
  | File_system -> 13
  | Process_runtime -> 14

let compare = Stdlib.compare
let equal = ( = )
let pp ppf t = Fmt.string ppf (to_string t)

module Set = Stdlib.Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Stdlib.Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
