(* Memoized permission decisions for the enforcement hot path.

   The paper's Figure 5 makes per-call permission checking the critical
   path of enforcement, and both checkers ([Engine] interprets the
   filter AST, [Compiled] applies a closure tree) still re-evaluate the
   focused token's whole filter on every call.  Most API-call streams
   are heavily repetitive (the CBench-style workloads, and any reactive
   app reinstalling the same rule shapes), so the same (token,
   attributes) pair is decided over and over.

   This module caches those decisions, keyed on a *canonicalized call
   signature*: the token plus the projection of the call's attributes
   onto exactly the dimensions the manifest's filter for that token
   inspects.  Two syntactically different calls that project to the
   same signature are, by construction of the evaluation semantics,
   decided identically — so a cache hit returns precisely what
   re-evaluation would.

   Cacheability is decided statically per token at cache-construction
   time (see [classify]):

   - [Stateless] filters inspect only pure call attributes (flow
     predicates, wildcards, action classes, priorities, packet-out
     provenance, topology sets, statistics levels).  Their decisions
     never change; entries live until evicted for capacity.
   - [Stateful] filters also consult the ownership store (OWN_FLOWS,
     MAX_RULE_COUNT).  Their entries are stamped with the store's
     generation counter and served only while the store is still at
     that generation — any [Ownership] mutation invalidates them
     wholesale, so a cached decision can never be *weaker* (more
     permissive or more restrictive) than a fresh one.

   Structure: the canonical-signature table (L2) is the authoritative
   cache; a small direct-mapped array (L1) keyed on the exact call
   value accelerates it.  Call equality refines signature equality, so
   every L1 answer is one L2 would give; L1 exists because projecting
   attributes and hashing a deep signature costs about as much as
   evaluating a mid-sized filter, while hashing a few discriminating
   call fields does not.  L1 entries are immutable records behind
   per-slot [Atomic.t] cells: lookups are lock-free (a racing reader
   observes either the old or the new entry pointer with full
   publication under the OCaml 5 memory model, each individually
   consistent, and staleness is re-checked against the generation
   stamp on every hit); L2 sits behind a mutex off the fast path.

   The safety argument and the invalidation protocol are specified in
   docs/CACHING.md. *)

open Shield_openflow
module Api = Shield_controller.Api

(* Cacheability classification ---------------------------------------------- *)

type cacheability =
  | Stateless  (** Decisions depend only on call attributes. *)
  | Stateful
      (** Decisions also depend on the ownership store; entries are
          generation-gated. *)

let singleton_stateful (s : Filter.singleton) =
  match s with
  | Filter.Owner Filter.Own_flows | Filter.Max_rule_count _ -> true
  | Filter.Owner Filter.All_flows | Filter.Pred _ | Filter.Wildcard _
  | Filter.Action_f _ | Filter.Max_priority _ | Filter.Min_priority _
  | Filter.Pkt_out _ | Filter.Phys_topo _ | Filter.Virt_topo _
  | Filter.Callback _ | Filter.Stats_level _ | Filter.Macro _ ->
    false

let classify (e : Filter.expr) : cacheability =
  if Filter.fold_atoms (fun acc s -> acc || singleton_stateful s) false e then
    Stateful
  else Stateless

(* Attribute footprint ------------------------------------------------------- *)

(** The attribute dimensions a filter expression actually inspects —
    what must go into the call signature for decisions keyed on it to
    be replayable. *)
type footprint = {
  fields : Filter.field list;  (** Sorted, deduplicated. *)
  actions : bool;
  priority : bool;
  stats_level : bool;
  from_pkt_in : bool;
  flow_state : bool;
      (** OWN_FLOWS / MAX_RULE_COUNT: the signature must carry the full
          match, flow command and vetting cookie, and the entry is
          generation-gated. *)
}

let footprint (e : Filter.expr) : footprint =
  let fp =
    { fields = []; actions = false; priority = false; stats_level = false;
      from_pkt_in = false; flow_state = false }
  in
  let fp =
    Filter.fold_atoms
      (fun fp s ->
        match s with
        | Filter.Pred { field; _ } | Filter.Wildcard { field; _ } ->
          { fp with fields = field :: fp.fields }
        | Filter.Action_f _ -> { fp with actions = true }
        | Filter.Max_priority _ | Filter.Min_priority _ ->
          { fp with priority = true }
        | Filter.Stats_level _ -> { fp with stats_level = true }
        | Filter.Pkt_out _ -> { fp with from_pkt_in = true }
        | Filter.Owner Filter.Own_flows ->
          { fp with flow_state = true }
        | Filter.Max_rule_count _ ->
          (* The budget also keys on the flow command (only [Add]
             consumes budget), carried by the flow-state part. *)
          { fp with flow_state = true }
        | Filter.Owner Filter.All_flows | Filter.Phys_topo _
        | Filter.Virt_topo _ | Filter.Callback _ | Filter.Macro _ ->
          (* Topology sets key on the dpid, which every signature
             already carries; the rest are constant. *)
          fp)
      fp e
  in
  { fp with fields = List.sort_uniq compare fp.fields }

(* Canonicalized call signatures --------------------------------------------- *)

(** One projected attribute dimension.  Structural equality and hashing
    over these is exactly signature equality. *)
type part =
  | P_field of Filter.field * Attrs.field_info
  | P_actions of Action.t list option
  | P_priority of int option
  | P_stats of Stats.level option
  | P_from_pkt_in of bool option
  | P_flow_state of
      Match_fields.t option * Flow_mod.command option * int option
      (** match, command, vetting cookie. *)

type key = {
  token : Token.t;
  kind : Attrs.call_kind;
  dpid : int option;
      (** Always part of the signature: topology membership, virtual
          confinement and per-switch budgets all key on it. *)
  parts : part list;
}

let key_of ~token (fp : footprint) (attrs : Attrs.t) : key =
  let parts =
    List.map (fun f -> P_field (f, Attrs.field_value attrs f)) fp.fields
  in
  let parts =
    if fp.actions then P_actions attrs.Attrs.actions :: parts else parts
  in
  let parts =
    if fp.priority then P_priority attrs.Attrs.priority :: parts else parts
  in
  let parts =
    if fp.stats_level then P_stats attrs.Attrs.stats_level :: parts else parts
  in
  let parts =
    if fp.from_pkt_in then P_from_pkt_in attrs.Attrs.from_pkt_in :: parts
    else parts
  in
  let parts =
    if fp.flow_state then
      P_flow_state (attrs.Attrs.match_, attrs.Attrs.flow_command,
                    attrs.Attrs.cookie)
      :: parts
    else parts
  in
  { token; kind = attrs.Attrs.kind; dpid = attrs.Attrs.dpid; parts }

(* L1 call hashing ----------------------------------------------------------- *)

(* A cheap hand-rolled hash over the discriminating call fields.
   Correctness never depends on it — a colliding slot is resolved by
   structural call equality — but [Hashtbl.hash]'s generic traversal of
   a flow-mod costs more than a filter evaluation, which would defeat
   the cache.  Collisions only cost an L1 miss (the L2 lookup still
   hits), so hashing a *subset* of fields is fine as long as it spreads
   the workload's actual variation: match addresses, dpid, priority. *)

let mix h x = ((h * 0x01000193) lxor x) land max_int

let hash_ip_match (m : Match_fields.ip_match option) h =
  match m with
  | Some im -> mix (mix h (Int32.to_int im.Match_fields.addr)) (Int32.to_int im.Match_fields.mask)
  | None -> mix h 0x55

let hash_int_opt (o : int option) h =
  match o with Some i -> mix h (i + 1) | None -> mix h 0x77

(* Monomorphic structural equality for the hot call shapes.  Same
   answer as generic [=] (which the cold arms delegate to), but a
   flow-mod compare compiles to direct field tests instead of an
   interpretive traversal, and physically identical calls — replayed
   trace entries, retried requests — short-circuit immediately. *)

let ip_match_eq (a : Match_fields.ip_match option)
    (b : Match_fields.ip_match option) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
    Int32.equal x.Match_fields.addr y.Match_fields.addr
    && Int32.equal x.Match_fields.mask y.Match_fields.mask
  | _ -> false

let int_opt_eq (a : int option) (b : int option) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x = y
  | _ -> false

let match_eq (a : Match_fields.t) (b : Match_fields.t) =
  a == b
  || (int_opt_eq a.Match_fields.in_port b.Match_fields.in_port
     && int_opt_eq a.Match_fields.dl_src b.Match_fields.dl_src
     && int_opt_eq a.Match_fields.dl_dst b.Match_fields.dl_dst
     && a.Match_fields.dl_type = b.Match_fields.dl_type
     && int_opt_eq a.Match_fields.dl_vlan b.Match_fields.dl_vlan
     && ip_match_eq a.Match_fields.nw_src b.Match_fields.nw_src
     && ip_match_eq a.Match_fields.nw_dst b.Match_fields.nw_dst
     && a.Match_fields.nw_proto = b.Match_fields.nw_proto
     && int_opt_eq a.Match_fields.tp_src b.Match_fields.tp_src
     && int_opt_eq a.Match_fields.tp_dst b.Match_fields.tp_dst)

let call_equal (a : Api.call) (b : Api.call) =
  a == b
  ||
  match (a, b) with
  | Api.Install_flow (da, fa), Api.Install_flow (db, fb) ->
    da = db
    && fa.Flow_mod.priority = fb.Flow_mod.priority
    && fa.Flow_mod.command = fb.Flow_mod.command
    && fa.Flow_mod.cookie = fb.Flow_mod.cookie
    && fa.Flow_mod.idle_timeout = fb.Flow_mod.idle_timeout
    && fa.Flow_mod.hard_timeout = fb.Flow_mod.hard_timeout
    && fa.Flow_mod.actions = fb.Flow_mod.actions
    && match_eq fa.Flow_mod.match_ fb.Flow_mod.match_
  | a, b -> a = b

let call_hash (c : Api.call) : int =
  let h =
    match c with
    | Api.Install_flow (dpid, fm) ->
      let m = fm.Flow_mod.match_ in
      mix 0x11 dpid
      |> hash_ip_match m.Match_fields.nw_dst
      |> hash_ip_match m.Match_fields.nw_src
      |> hash_int_opt m.Match_fields.tp_dst
      |> hash_int_opt m.Match_fields.in_port
      |> fun h ->
      mix (mix h fm.Flow_mod.priority)
        (match fm.Flow_mod.command with
        | Flow_mod.Add -> 1
        | Flow_mod.Modify -> 2
        | Flow_mod.Delete -> 3)
    | Api.Read_stats req ->
      mix (hash_int_opt req.Stats.dpid_filter (mix 0x22 0))
        (match req.Stats.level with
        | Stats.Flow_level -> 1
        | Stats.Port_level -> 2
        | Stats.Switch_level -> 3)
    | Api.Send_packet_out { dpid; port; from_pkt_in; packet; _ } ->
      mix
        (mix (mix (mix 0x33 dpid) port) (if from_pkt_in then 1 else 0))
        (packet.Packet.dl_src lxor packet.Packet.dl_dst)
    | other ->
      (* Remaining call shapes are shallow; the generic hash is fine. *)
      Hashtbl.hash other
  in
  (* Spread the entropy into the low bits the direct map indexes by. *)
  let h = h lxor (h lsr 16) in
  h land max_int

(* The cache ----------------------------------------------------------------- *)

type slot = { fp : footprint; gated : bool }

type counters = {
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
  evictions : int Atomic.t;
  bypasses : int Atomic.t;
}

(** An L1 entry is immutable; each slot is an [Atomic.t] holding the
    entry pointer.  Plain mutable array cells were NOT enough under
    [Isolated_domains]: the OCaml 5 memory model makes unsynchronized
    non-atomic reads/writes racy — a reader could observe the slot
    write before the writes initializing the entry it points to.
    Atomic slots give release/acquire publication: a reader that sees
    the pointer sees the fully built entry, each individually
    consistent, with staleness still re-checked against the generation
    stamp on every hit. *)
type l1_entry = {
  call : Api.call;
  l1_hash : int;  (** [call_hash call], for cheap slot rejection. *)
  l1_gen : int;
  l1_pass : bool;
}

type t = {
  l1 : l1_entry option Atomic.t array;
      (** Direct-mapped, power-of-two sized. *)
  l1_mask : int;
  table : (key, int * bool) Hashtbl.t;  (** signature -> (generation, pass). *)
  max_entries : int;
  generation : unit -> int;
  slots : slot option array;  (** Indexed by {!Token.index}. *)
  counters : counters;
  mutex : Mutex.t;  (** Guards [table] only; [l1] is lock-free. *)
}

let default_max_entries = 16384

let snapshot (c : counters) : Shield_controller.Metrics.cache_stats =
  { Shield_controller.Metrics.hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    invalidations = Atomic.get c.invalidations;
    evictions = Atomic.get c.evictions;
    bypasses = Atomic.get c.bypasses }

let rec pow2_at_least n v = if v >= n then v else pow2_at_least n (v * 2)

(** Build a cache for [manifest].  [generation] is the current
    generation of the state the manifest's stateful filters read —
    normally [fun () -> Ownership.generation store]; defaults to a
    constant, which is sound only for stateless evaluation
    environments ({!Filter_eval.pure_env}).  [name], when given,
    registers the cache's counters in the
    {!Shield_controller.Metrics} cache registry. *)
let create ?name ?(max_entries = default_max_entries)
    ?(generation = fun () -> 0) (manifest : Perm.manifest) : t =
  let max_entries = max 1 max_entries in
  let slots = Array.make Token.count None in
  List.iter
    (fun (p : Perm.t) ->
      slots.(Token.index p.Perm.token) <-
        Some
          { fp = footprint p.Perm.filter;
            gated = classify p.Perm.filter = Stateful })
    manifest;
  let l1_size = pow2_at_least (min max_entries 4096) 1 in
  let t =
    { l1 = Array.init l1_size (fun _ -> Atomic.make None);
      l1_mask = l1_size - 1;
      table = Hashtbl.create 256;
      max_entries;
      generation;
      slots;
      counters =
        { hits = Atomic.make 0; misses = Atomic.make 0;
          invalidations = Atomic.make 0; evictions = Atomic.make 0;
          bypasses = Atomic.make 0 };
      mutex = Mutex.create () }
  in
  (match name with
  | Some name ->
    Shield_controller.Metrics.register_cache name (fun () ->
        snapshot t.counters)
  | None -> ());
  t

let stats t = snapshot t.counters

let size t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  Array.iter (fun slot -> Atomic.set slot None) t.l1;
  Mutex.unlock t.mutex

(** How a lookup was served, for traces and decision explanations. *)
type outcome = L1_hit | L2_hit | Miss | Bypass

let to_cache_outcome : outcome -> Shield_controller.Api.cache_outcome =
  function
  | L1_hit -> Api.L1_hit
  | L2_hit -> Api.L2_hit
  | Miss -> Api.Cache_miss
  | Bypass -> Api.Cache_bypass

(* The L2 (canonical signature) path, taken on an L1 miss. *)
let check_l2 t ~(slot : slot) ~token ~call ~hash ~gen ~l1_idx
    ~(eval : Attrs.t -> bool) : bool * outcome =
  let attrs = Attrs.of_call call in
  let key = key_of ~token slot.fp attrs in
  Mutex.lock t.mutex;
  let cached =
    match Hashtbl.find_opt t.table key with
    | Some (g, pass) when g = gen ->
      Atomic.incr t.counters.hits;
      `Hit pass
    | Some (g, _) when g > gen ->
      (* This lookup raced with back-to-back generation bumps: its
         captured generation is already behind the entry's.  The
         fresher entry must not be served (invariant I2 keys strictly
         on the generation captured before evaluation), but destroying
         or overwriting it would let every stale straggler evict the
         current readers' work — under rapid bumps that degenerated to
         a cache that never holds a current entry.  Decide by
         evaluation and leave the fresher entry in place. *)
      `Stale_lookup
    | Some _ ->
      Atomic.incr t.counters.invalidations;
      Hashtbl.remove t.table key;
      `Evaluate
    | None -> `Evaluate
  in
  Mutex.unlock t.mutex;
  (* Same preservation rule at L1: never clobber a fresher-tagged entry
     for the same call with this lookup's older generation. *)
  let publish pass =
    match Atomic.get t.l1.(l1_idx) with
    | Some e when e.l1_hash = hash && call_equal e.call call && e.l1_gen > gen
      ->
      ()
    | _ ->
      Atomic.set t.l1.(l1_idx)
        (Some { call; l1_hash = hash; l1_gen = gen; l1_pass = pass })
  in
  match cached with
  | `Hit pass ->
    publish pass;
    (pass, L2_hit)
  | `Stale_lookup ->
    Atomic.incr t.counters.misses;
    (eval attrs, Miss)
  | `Evaluate ->
    let pass = eval attrs in
    Mutex.lock t.mutex;
    Atomic.incr t.counters.misses;
    (match Hashtbl.find_opt t.table key with
    | Some (g, _) when g > gen ->
      (* A reader that captured a newer generation filled this key
         between our two critical sections; its entry wins. *)
      ()
    | _ ->
      if Hashtbl.length t.table >= t.max_entries then begin
        (* Full: flush.  Simple, and the skewed workloads that benefit
           from caching repopulate their hot set within one pass. *)
        Atomic.fetch_and_add t.counters.evictions (Hashtbl.length t.table)
        |> ignore;
        Hashtbl.reset t.table
      end;
      Hashtbl.replace t.table key (gen, pass));
    Mutex.unlock t.mutex;
    publish pass;
    (pass, Miss)

(** [check_outcome t ~token ~call ~eval] — the memoized filter decision
    for [call] under [token], plus how the lookup was served; [eval]
    computes the decision from the call's attributes on a miss.  Tokens
    the manifest does not grant bypass the cache (counted), since the
    engine decides those without evaluating any filter. *)
let check_outcome t ~(token : Token.t) ~(call : Api.call)
    ~(eval : Attrs.t -> bool) : bool * outcome =
  match t.slots.(Token.index token) with
  | None ->
    Atomic.incr t.counters.bypasses;
    (eval (Attrs.of_call call), Bypass)
  | Some slot -> (
    (* Capture the generation *before* any evaluation: if a mutation
       races with [eval], the entry lands tagged with the older
       generation and is discarded on its next lookup — stale entries
       are never served (docs/CACHING.md, invariant I2). *)
    let gen = if slot.gated then t.generation () else 0 in
    let hash = call_hash call in
    let i = hash land t.l1_mask in
    match Atomic.get t.l1.(i) with
    | Some e when e.l1_hash = hash && call_equal e.call call ->
      if e.l1_gen = gen then begin
        Atomic.incr t.counters.hits;
        (e.l1_pass, L1_hit)
      end
      else begin
        (* Only a genuinely stale entry (older than this lookup's
           captured generation) is invalidated; an entry tagged newer
           means *this lookup* is the stale party and must not destroy
           fresher readers' work (see [check_l2]). *)
        if e.l1_gen < gen then begin
          Atomic.incr t.counters.invalidations;
          Atomic.set t.l1.(i) None
        end;
        check_l2 t ~slot ~token ~call ~hash ~gen ~l1_idx:i ~eval
      end
    | _ -> check_l2 t ~slot ~token ~call ~hash ~gen ~l1_idx:i ~eval)

(** {!check_outcome} without the provenance.  The L1 hit path here is
    allocation-free (no result pair), which matters on the hot path. *)
let check t ~(token : Token.t) ~(call : Api.call)
    ~(eval : Attrs.t -> bool) : bool =
  match t.slots.(Token.index token) with
  | None ->
    Atomic.incr t.counters.bypasses;
    eval (Attrs.of_call call)
  | Some slot -> (
    (* Generation captured before evaluation, as in [check_outcome]. *)
    let gen = if slot.gated then t.generation () else 0 in
    let hash = call_hash call in
    let i = hash land t.l1_mask in
    match Atomic.get t.l1.(i) with
    | Some e when e.l1_hash = hash && call_equal e.call call ->
      if e.l1_gen = gen then begin
        Atomic.incr t.counters.hits;
        e.l1_pass
      end
      else begin
        (* Stale-entry-only invalidation, as in [check_outcome]. *)
        if e.l1_gen < gen then begin
          Atomic.incr t.counters.invalidations;
          Atomic.set t.l1.(i) None
        end;
        fst (check_l2 t ~slot ~token ~call ~hash ~gen ~l1_idx:i ~eval)
      end
    | _ -> fst (check_l2 t ~slot ~token ~call ~hash ~gen ~l1_idx:i ~eval))
