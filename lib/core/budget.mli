(** Resource budgets for admitting untrusted manifests and policies
    (docs/VETTING.md).

    Manifests and policies arrive from an untrusted app market (§III
    threat model), so every stage of the admission pipeline — lexing,
    parsing, macro expansion, normal-form conversion, inclusion
    checking, reconciliation — runs under explicit, fail-closed limits.
    A budget accounts for steps (cheap work ticks), clause allocations
    (the currency of Algorithm 1's CNF/DNF distribution), expression
    nodes built by macro expansion, nesting depth, and a wall-clock
    deadline.  Exhausting any limit raises {!Exhausted} with the stage
    and the resources spent, which {!Vetting} converts into a
    structured [Rejected] verdict — never a hang, a heap blowup, or an
    uncaught exception.

    The budget is installed as an {e ambient scope} ({!with_scope})
    rather than threaded through every signature: the admission
    pipeline reuses the production checking/reconciliation code paths,
    and those paths stay zero-cost when no scope is installed (every
    hook is a no-op).  Scopes are per-domain (stored in domain-local
    state); run one admission at a time per domain — concurrent
    admissions belong on separate domains. *)

type limits = {
  max_steps : int;  (** Work ticks across the whole pipeline. *)
  max_clauses : int;
      (** Cumulative clauses built by CNF/DNF distribution ({!Nf.cross}
          ticks one per merged clause, before allocating it). *)
  max_nodes : int;  (** Expression nodes built by macro expansion. *)
  max_depth : int;  (** Nesting depth (parsers, structural checks). *)
  deadline : float option;  (** Wall-clock seconds for the pipeline. *)
}

val default_limits : limits
(** Generous enough for every legitimate manifest/policy in the test
    and bench corpus; tight enough that every hostile family in
    [bench/vetting_lab.ml] is cut off in well under a second. *)

type spent = {
  steps : int;
  clauses : int;
  nodes : int;
  depth_hwm : int;  (** Deepest nesting observed. *)
  elapsed : float;  (** Seconds since {!create}. *)
}

exception Exhausted of { stage : string; reason : string; spent : spent }
(** Raised by the tick functions when a limit is exceeded.  [stage] is
    the last {!set_stage} label ("parse", "expand", "normalize",
    "reconcile", …). *)

type t

val create : ?limits:limits -> unit -> t
val limits : t -> limits
val spent : t -> spent

val notes : t -> string list
(** Degradation notes recorded by {!note} (deduplicated, oldest
    first): conservative fallbacks taken while the scope was active. *)

val with_scope : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient budget for the calling domain while [f]
    runs; restores the previous scope (scopes nest) even on raise. *)

val current : unit -> t option
(** The ambient budget of the calling domain, if any. *)

(** {1 Ambient hooks} — all no-ops when no scope is installed. *)

val set_stage : string -> unit
(** Label subsequent exhaustion reports (and {!Exhausted.stage}). *)

val stage : unit -> string
(** Current stage label; ["?"] without a scope. *)

val step : ?cost:int -> unit -> unit
(** Account [cost] (default 1) work ticks.
    @raise Exhausted past [max_steps] or the deadline (the deadline is
    polled every 1024 ticks to keep the hook cheap). *)

val alloc_clauses : int -> unit
(** Account clauses about to be built.
    @raise Exhausted past [max_clauses]. *)

val alloc_nodes : int -> unit
(** Account expression nodes about to be built.
    @raise Exhausted past [max_nodes]. *)

val depth : int -> unit
(** Record nesting depth [d] (tracks the high-water mark).
    @raise Exhausted past [max_depth]. *)

val note : string -> unit
(** Record that a conservative fallback was taken (e.g. a normal-form
    conversion blew past [max_clauses] and the caller answered
    fail-closed).  Deduplicated. *)

val pp_spent : Format.formatter -> spent -> unit
