(** The app-market update queue (docs/CHURN.md).

    An SDN app market installs, upgrades and revokes apps {e while
    traffic flows}.  This module is the controller-side half of the
    live-update subsystem: a serialized, supervised queue of lifecycle
    requests, each executed as one staged transaction by a pluggable
    executor, with a transaction ledger, commit/rollback counters and
    sandbox audit notifications.

    The executor is supplied by the deployment layer
    ({!Sdnshield.Epoch.executor} wires the full
    vet → reconcile → lint → verify → compile → publish pipeline); the
    queue itself is generic, mirroring how {!Runtime} accepts any
    {!Api.checker}.  Exactly one worker thread drains the queue, so
    transactions are serialized — the epoch stores the executor
    publishes into need no cross-transaction locking, and a rollback
    can only ever race with readers, never with another writer. *)

type kind = Install | Upgrade | Revoke

val kind_to_string : kind -> string

type request = {
  kind : kind;
  app : string;
  manifest_src : string;  (** Manifest source text; ignored for [Revoke]. *)
}

val install : string -> string -> request
(** [install app manifest_src]. *)

val upgrade : string -> string -> request
val revoke : string -> request

(** The result of one lifecycle transaction. *)
type outcome =
  | Committed of {
      epoch : int;  (** Global epoch after the commit. *)
      delta : bool;
          (** The reconcile stage re-evaluated only the statements
              touching the changed app (docs/CHURN.md) rather than the
              whole policy. *)
      republished : string list;
          (** Other apps whose manifests the policy repaired as a side
              effect (e.g. exclusivity truncation) and whose epochs
              were therefore republished in the same commit. *)
      stages : (string * float) list;
          (** Stage names and durations (seconds), in execution order. *)
    }
  | Rolled_back of {
      stage : string;  (** Stage that failed. *)
      reason : string;
      epoch : int;
          (** Global epoch still current after the rollback — the
              pre-transaction epoch ([-1] when the executor itself
              crashed before reporting one). *)
      stages : (string * float) list;
          (** Stage names and durations (seconds) in execution order,
              {e including} the failed stage and any publish undo
              (["rollback-undo"]) — where the transaction's time went
              before it died. *)
    }

val committed : outcome -> bool

val stages_of : outcome -> (string * float) list
(** The stage timing list of either outcome. *)

type txn = {
  id : int;  (** 1-based submission order. *)
  request : request;
  outcome : outcome;
}

type stats = {
  submitted : int;
  commits : int;
  rollbacks : int;
}

type t

val create :
  ?capacity:int ->
  ?sandbox:Sandbox.t ->
  ?trace:Trace.t ->
  ?health:Health.t ->
  ?flight:Forensics.Flight.t ->
  exec:(request -> outcome) ->
  unit ->
  t
(** [create ~exec ()] starts the market worker.  [exec] runs one
    lifecycle transaction to completion and must be fail-safe: stage
    failures are reported as [Rolled_back], not raised (a raise is
    still contained — the worker converts it to a [Rolled_back] with
    stage ["apply"] and keeps serving).  [capacity] bounds the update
    queue (default unbounded; full queues block the submitter —
    lifecycle updates have exactly-once semantics).  [sandbox], when
    given, receives an audit entry per transaction: ["market-commit"]
    (allowed) or ["market-rollback"] (denied), the notification channel
    {!Forensics.fault_log} surfaces.

    Observability hooks (docs/OBSERVABILITY.md), all optional and all
    off by default: [trace] records one {!Trace.txn_span} per
    transaction (stage children included) and feeds the
    [lat:stage:<name>] histograms; [health] receives a rollback signal
    per rolled-back transaction plus every stage duration; [flight]
    gets a {!Forensics.Flight.boundary} after each commit and a
    {!Forensics.Flight.capture} (with the transaction span) on each
    rollback.

    Registers the [queue:market] depth gauge and the
    [market:committed] / [market:rolled-back] counters in the
    {!Metrics} gauge registry; {!shutdown} unregisters them. *)

val submit : t -> request -> outcome
(** Enqueue and wait for the transaction's outcome.
    After {!shutdown}: [Rolled_back] with stage ["queue"]. *)

val submit_async : t -> request -> outcome Channel.Ivar.t
(** Enqueue without waiting; the ivar fills when the transaction
    completes.  After {!shutdown} the ivar is already filled with a
    stage-["queue"] [Rolled_back]. *)

val history : t -> txn list
(** Completed transactions, oldest first. *)

val stats : t -> stats

val drain : t -> unit
(** Block until every submitted transaction has completed. *)

val shutdown : t -> unit
(** Drain, stop the worker, unregister the gauges.  Idempotent. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_txn : Format.formatter -> txn -> unit
