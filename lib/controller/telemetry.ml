(* Unified telemetry export.

   Observability so far lives in per-concern corners: latency
   histograms and exact sample sets in [Metrics], cache counters in the
   cache registry, queue-depth gauges in the gauge registry, fault
   counters in the runtime, span statistics in a [Trace] store.  This
   module takes one consistent snapshot of all of them and renders it
   two ways:

   - JSON, for programmatic consumers (and the [sdnshield telemetry]
     CLI command), with a minimal parser alongside so round-trips can
     be validated without external dependencies;
   - Prometheus text exposition format (version 0.0.4), because that is
     what an SDN operator's monitoring stack actually scrapes.

   The snapshot reads the process-wide Metrics registries itself;
   runtime-owned counters (reference-monitor totals, fault counters)
   are passed in by the caller — [Runtime.telemetry] does this — so
   this module depends only on [Metrics] and [Trace], never on the
   runtime. *)

type snapshot = {
  counters : (string * int) list;
      (** Caller-supplied monotone counters (calls, denials, fault
          counters, ...), in the caller's order. *)
  histograms : (string * Metrics.Histogram.export) list;
  caches : (string * Metrics.cache_stats) list;
  gauges : (string * Metrics.gauge) list;
  trace : Trace.stats option;
  health : Health.verdict option;
      (** The sliding-window monitor's judgment at snapshot time. *)
}

(** One consistent snapshot: [counters], [trace] and [health] come
    from the caller (the registries know nothing of runtimes),
    everything else from the {!Metrics} registries.  Each registry is
    read atomically per entry; the snapshot as a whole is not a
    stop-the-world cut. *)
let snapshot ?(counters = []) ?trace ?health () =
  { counters;
    histograms =
      List.map
        (fun (name, h) -> (name, Metrics.Histogram.export h))
        (Metrics.hist_report ());
    caches = Metrics.cache_report ();
    gauges = Metrics.gauge_report ();
    trace = Option.map Trace.stats trace;
    health = Option.map Health.verdict health }

(* JSON ---------------------------------------------------------------------

   A deliberately small JSON: objects, arrays, strings, finite numbers,
   booleans, null.  Non-finite floats serialize as [null] (JSON has no
   NaN), which only affects the min/max of empty histograms. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num f ->
      if not (Float.is_finite f) then Buffer.add_string b "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 1024 in
    write b v;
    Buffer.contents b

  exception Parse of string

  (* Recursive-descent parser over a cursor.  Enough JSON to read back
     what [write] emits (plus the usual whitespace freedom); \u escapes
     decode only the ASCII range this module ever produces. *)
  let of_string (s : string) : (t, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else
              (* Outside what we emit; keep the escape verbatim. *)
              Buffer.add_string b ("\\u" ^ hex);
            go ()
          | _ -> fail "bad escape")
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let json_of_cache (c : Metrics.cache_stats) : Json.t =
  Json.Obj
    [ ("hits", Json.Num (float_of_int c.Metrics.hits));
      ("misses", Json.Num (float_of_int c.Metrics.misses));
      ("invalidations", Json.Num (float_of_int c.Metrics.invalidations));
      ("evictions", Json.Num (float_of_int c.Metrics.evictions));
      ("bypasses", Json.Num (float_of_int c.Metrics.bypasses)) ]

let json_of_hist (h : Metrics.Histogram.export) : Json.t =
  Json.Obj
    [ ("n", Json.Num (float_of_int h.Metrics.Histogram.n));
      ("sum", Json.Num h.Metrics.Histogram.sum);
      ("min", Json.Num h.Metrics.Histogram.min);
      ("max", Json.Num h.Metrics.Histogram.max);
      ("underflow", Json.Num (float_of_int h.Metrics.Histogram.underflow));
      ("overflow", Json.Num (float_of_int h.Metrics.Histogram.overflow));
      ("cells",
       Json.Arr
         (List.map
            (fun (lo, hi, count) ->
              Json.Arr
                [ Json.Num lo; Json.Num hi;
                  Json.Num (float_of_int count) ])
            h.Metrics.Histogram.cells)) ]

let json_of_trace (s : Trace.stats) : Json.t =
  Json.Obj
    [ ("capacity", Json.Num (float_of_int s.Trace.capacity));
      ("seen", Json.Num (float_of_int s.Trace.seen));
      ("recorded", Json.Num (float_of_int s.Trace.recorded));
      ("sampled_out", Json.Num (float_of_int s.Trace.sampled_out));
      ("dropped", Json.Num (float_of_int s.Trace.dropped));
      ("stored", Json.Num (float_of_int s.Trace.stored));
      ("sampling", Json.Num s.Trace.sampling);
      ("txn_capacity", Json.Num (float_of_int s.Trace.txn_capacity));
      ("txn_recorded", Json.Num (float_of_int s.Trace.txn_recorded));
      ("txn_dropped", Json.Num (float_of_int s.Trace.txn_dropped));
      ("txn_stored", Json.Num (float_of_int s.Trace.txn_stored)) ]

let json_of_health (v : Health.verdict) : Json.t =
  Json.Obj
    [ ("status", Json.Str (Health.status_to_string v.Health.status));
      ("window_s", Json.Num v.Health.window);
      ("totals",
       Json.Obj (List.map (fun (k, x) -> (k, Json.Num x)) v.Health.totals));
      ("causes",
       Json.Arr
         (List.map
            (fun (c : Health.cause) ->
              Json.Obj
                [ ("signal", Json.Str c.Health.cause_signal);
                  ("observed", Json.Num c.Health.observed);
                  ("threshold", Json.Num c.Health.threshold);
                  ("level", Json.Str (Health.status_to_string c.Health.level))
                ])
            v.Health.causes)) ]

let to_json_value (s : snapshot) : Json.t =
  Json.Obj
    [ ("counters",
       Json.Obj
         (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) s.counters));
      ("histograms",
       Json.Obj (List.map (fun (k, h) -> (k, json_of_hist h)) s.histograms));
      ("caches",
       Json.Obj (List.map (fun (k, c) -> (k, json_of_cache c)) s.caches));
      ("gauges",
       Json.Obj
         (List.map
            (fun (k, (g : Metrics.gauge)) ->
              ( k,
                Json.Obj
                  [ ("depth", Json.Num (float_of_int g.Metrics.depth));
                    ("hwm", Json.Num (float_of_int g.Metrics.hwm)) ] ))
            s.gauges));
      ("trace",
       (match s.trace with None -> Json.Null | Some tr -> json_of_trace tr));
      ("health",
       match s.health with None -> Json.Null | Some v -> json_of_health v) ]

let to_json s = Json.to_string (to_json_value s)

(* Prometheus text exposition ------------------------------------------------ *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Registry names like
   "lat:app:learning-switch" carry ':' (legal but conventionally
   reserved) and '-'; they go into label VALUES, which are free-form,
   while the metric name itself stays fixed per family. *)

let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let sanitize_metric_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_prometheus (s : snapshot) : string =
  let b = Buffer.create 4096 in
  let line ?(labels = []) name value =
    Buffer.add_string b name;
    (match labels with
    | [] -> ()
    | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%s=\"%s\"" k (escape_label v)))
        labels;
      Buffer.add_char b '}');
    Buffer.add_string b
      (if Float.is_integer value && Float.abs value < 1e15 then
         Printf.sprintf " %.0f\n" value
       else Printf.sprintf " %g\n" value)
  in
  let header name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  List.iter
    (fun (k, v) ->
      let name = "sdnshield_" ^ sanitize_metric_name k ^ "_total" in
      header name "counter" ("Runtime counter " ^ k ^ ".");
      line name (float_of_int v))
    s.counters;
  if s.gauges <> [] then begin
    header "sdnshield_queue_depth" "gauge" "Current depth of a runtime queue.";
    List.iter
      (fun (k, (g : Metrics.gauge)) ->
        line ~labels:[ ("queue", k) ] "sdnshield_queue_depth"
          (float_of_int g.Metrics.depth))
      s.gauges;
    header "sdnshield_queue_high_water" "gauge"
      "High-water mark of a runtime queue.";
    List.iter
      (fun (k, (g : Metrics.gauge)) ->
        line ~labels:[ ("queue", k) ] "sdnshield_queue_high_water"
          (float_of_int g.Metrics.hwm))
      s.gauges
  end;
  if s.caches <> [] then begin
    let field name help get =
      let metric = "sdnshield_cache_" ^ name ^ "_total" in
      header metric "counter" help;
      List.iter
        (fun (k, c) ->
          line ~labels:[ ("cache", k) ] metric (float_of_int (get c)))
        s.caches
    in
    field "hits" "Decision-cache hits." (fun (c : Metrics.cache_stats) ->
        c.Metrics.hits);
    field "misses" "Decision-cache misses." (fun c -> c.Metrics.misses);
    field "invalidations" "Generation-stale entries discarded." (fun c ->
        c.Metrics.invalidations);
    field "evictions" "Entries discarded for capacity." (fun c ->
        c.Metrics.evictions);
    field "bypasses" "Lookups the cache refused." (fun c -> c.Metrics.bypasses)
  end;
  if s.histograms <> [] then begin
    header "sdnshield_latency_seconds" "histogram"
      "Mediated-call latency by stage (log-linear buckets).";
    List.iter
      (fun (k, (h : Metrics.Histogram.export)) ->
        let labels le = [ ("stage", k); ("le", le) ] in
        (* Prometheus buckets are cumulative (<= le); underflow samples
           sit below every bound, so they seed the running count. *)
        let cum = ref h.Metrics.Histogram.underflow in
        List.iter
          (fun (_, hi, count) ->
            cum := !cum + count;
            line
              ~labels:(labels (Printf.sprintf "%g" hi))
              "sdnshield_latency_seconds_bucket" (float_of_int !cum))
          h.Metrics.Histogram.cells;
        line ~labels:(labels "+Inf") "sdnshield_latency_seconds_bucket"
          (float_of_int h.Metrics.Histogram.n);
        line
          ~labels:[ ("stage", k) ]
          "sdnshield_latency_seconds_sum" h.Metrics.Histogram.sum;
        line
          ~labels:[ ("stage", k) ]
          "sdnshield_latency_seconds_count"
          (float_of_int h.Metrics.Histogram.n))
      s.histograms
  end;
  (match s.trace with
  | None -> ()
  | Some tr ->
    header "sdnshield_trace_spans" "gauge"
      "Span-store accounting (seen/recorded/stored/dropped/sampled_out).";
    List.iter
      (fun (state, v) ->
        line ~labels:[ ("state", state) ] "sdnshield_trace_spans"
          (float_of_int v))
      [ ("seen", tr.Trace.seen); ("recorded", tr.Trace.recorded);
        ("stored", tr.Trace.stored); ("dropped", tr.Trace.dropped);
        ("sampled_out", tr.Trace.sampled_out) ];
    header "sdnshield_trace_sampling_ratio" "gauge"
      "Effective trace sampling ratio.";
    line "sdnshield_trace_sampling_ratio" tr.Trace.sampling;
    header "sdnshield_trace_txn_spans" "gauge"
      "Lifecycle-transaction span accounting (recorded/stored/dropped).";
    List.iter
      (fun (state, v) ->
        line ~labels:[ ("state", state) ] "sdnshield_trace_txn_spans"
          (float_of_int v))
      [ ("recorded", tr.Trace.txn_recorded);
        ("stored", tr.Trace.txn_stored);
        ("dropped", tr.Trace.txn_dropped) ]);
  (match s.health with
  | None -> ()
  | Some v ->
    header "sdnshield_health_status" "gauge"
      "Sliding-window health verdict: 0 healthy, 1 degraded, 2 unhealthy.";
    line "sdnshield_health_status"
      (float_of_int (Health.status_severity v.Health.status));
    header "sdnshield_health_window_seconds" "gauge"
      "Length of the health monitor's sliding window.";
    line "sdnshield_health_window_seconds" v.Health.window;
    header "sdnshield_health_signal" "gauge"
      "Windowed value per health signal (counts, or seconds for \
       stage-max-s).";
    List.iter
      (fun (k, x) -> line ~labels:[ ("signal", k) ] "sdnshield_health_signal" x)
      v.Health.totals;
    if v.Health.causes <> [] then begin
      header "sdnshield_health_cause_level" "gauge"
        "Severity of each crossed health rule: 1 degraded, 2 unhealthy.";
      List.iter
        (fun (c : Health.cause) ->
          line
            ~labels:[ ("signal", c.Health.cause_signal) ]
            "sdnshield_health_cause_level"
            (float_of_int (Health.status_severity c.Health.level)))
        v.Health.causes
    end);
  Buffer.contents b

(* Shape validation for the exposition text.  Every non-comment line
   must be `name[{label="value",...}] value`, and — family-aware since
   the control-plane observability work — every sample must belong to
   a preceding `# TYPE` declaration of its family: exactly the family
   name for counters and gauges, or the `_bucket`/`_sum`/`_count`
   suffixes for histograms.  Counter families must end `_total`, gauge
   families must not, and `sdnshield_health_status` must read 0, 1 or
   2.  This pins the exposition names the smoke gates (and an
   operator's scrape config) rely on; it is still not a full scrape
   parser. *)
let validate_prometheus (text : string) : (unit, string) result =
  let is_name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let families : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let ends_with suffix name =
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  let strip suffix name =
    String.sub name 0 (String.length name - String.length suffix)
  in
  let family_of name =
    match Hashtbl.find_opt families name with
    | Some typ -> Some (name, typ)
    | None ->
      (* Histogram samples carry the family name plus a suffix. *)
      List.find_map
        (fun suffix ->
          if ends_with suffix name then
            let base = strip suffix name in
            match Hashtbl.find_opt families base with
            | Some "histogram" -> Some (base, "histogram")
            | _ -> None
          else None)
        [ "_bucket"; "_sum"; "_count" ]
  in
  let check_type_line lineno line =
    (* "# TYPE <name> <type>" — record the family; anything else
       starting with '#' is a comment/HELP and passes. *)
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; typ ] ->
      if
        not (List.mem typ [ "counter"; "gauge"; "histogram"; "summary";
                            "untyped" ])
      then Error (Printf.sprintf "line %d: unknown metric type %S" lineno typ)
      else if typ = "counter" && not (ends_with "_total" name) then
        Error
          (Printf.sprintf "line %d: counter family %s must end _total" lineno
             name)
      else if typ = "gauge" && ends_with "_total" name then
        Error
          (Printf.sprintf "line %d: gauge family %s must not end _total"
             lineno name)
      else begin
        Hashtbl.replace families name typ;
        Ok ()
      end
    | _ -> Ok ()
  in
  let check_line lineno line =
    if line = "" then Ok ()
    else if String.length line >= 1 && line.[0] = '#' then
      check_type_line lineno line
    else
      let name_end = ref 0 in
      while
        !name_end < String.length line && is_name_char line.[!name_end]
      do
        incr name_end
      done;
      if !name_end = 0 then
        Error (Printf.sprintf "line %d: no metric name" lineno)
      else
        let name = String.sub line 0 !name_end in
        let rest = String.sub line !name_end (String.length line - !name_end) in
        let rest =
          if rest <> "" && rest.[0] = '{' then
            match String.index_opt rest '}' with
            | Some i -> String.sub rest (i + 1) (String.length rest - i - 1)
            | None -> rest (* flagged below: no value after unclosed braces *)
          else rest
        in
        if String.length rest < 2 || rest.[0] <> ' ' then
          Error (Printf.sprintf "line %d: missing value" lineno)
        else
          let v = String.sub rest 1 (String.length rest - 1) in
          let value_ok =
            if v = "+Inf" || v = "-Inf" || v = "NaN" then Ok ()
            else
              match float_of_string_opt v with
              | Some _ -> Ok ()
              | None -> Error (Printf.sprintf "line %d: bad value %S" lineno v)
          in
          match value_ok with
          | Error _ as e -> e
          | Ok () -> (
            match family_of name with
            | None ->
              Error
                (Printf.sprintf
                   "line %d: sample %s has no preceding # TYPE family" lineno
                   name)
            | Some (_, _) ->
              if
                name = "sdnshield_health_status"
                && not (List.mem v [ "0"; "1"; "2" ])
              then
                Error
                  (Printf.sprintf
                     "line %d: sdnshield_health_status must be 0, 1 or 2 \
                      (got %s)"
                     lineno v)
              else Ok ())
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match check_line lineno line with
      | Ok () -> go (lineno + 1) rest
      | Error _ as e -> e)
  in
  go 1 lines

(* Human-readable rendering -------------------------------------------------- *)

let pp ppf (s : snapshot) =
  List.iter (fun (k, v) -> Fmt.pf ppf "%s=%d@ " k v) s.counters;
  Fmt.pf ppf "@.";
  (match s.trace with
  | None -> ()
  | Some tr -> Fmt.pf ppf "%a@." Trace.pp_stats tr);
  (match s.health with
  | None -> ()
  | Some v -> Fmt.pf ppf "%a@." Health.pp_verdict v);
  List.iter
    (fun (k, (g : Metrics.gauge)) ->
      Fmt.pf ppf "gauge %-24s depth=%-6d hwm=%d@." k g.Metrics.depth
        g.Metrics.hwm)
    s.gauges;
  List.iter
    (fun (k, c) -> Fmt.pf ppf "cache %-24s %a@." k Metrics.pp_cache_stats c)
    s.caches;
  List.iter
    (fun (k, (h : Metrics.Histogram.export)) ->
      if h.Metrics.Histogram.n = 0 then
        Fmt.pf ppf "hist  %-24s (empty)@." k
      else
        Fmt.pf ppf "hist  %-24s n=%-8d min=%.1fus max=%.1fus mean=%.1fus@." k
          h.Metrics.Histogram.n
          (h.Metrics.Histogram.min *. 1e6)
          (h.Metrics.Histogram.max *. 1e6)
          (h.Metrics.Histogram.sum /. float_of_int h.Metrics.Histogram.n *. 1e6))
    s.histograms
