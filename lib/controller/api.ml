(* The northbound API-call model.

   Every action an app can take — SDN API calls, event receipt and host
   system calls — is reified as an [Api.call] value.  The permission
   engine mediates this single type, which is what makes the permission
   abstractions controller-independent (the paper's standalone
   permission engine reads "permission checking objects" carrying the
   caller identity, required permission and parameters; this type is
   that object). *)

open Shield_openflow
open Shield_openflow.Types
open Shield_net

type event_kind =
  | E_packet_in
  | E_flow
  | E_topology
  | E_error
  | E_stats
  | E_app of string  (** Inter-app publication channel, e.g. "alto". *)

let event_kind_to_string = function
  | E_packet_in -> "packet_in"
  | E_flow -> "flow"
  | E_topology -> "topology"
  | E_error -> "error"
  | E_stats -> "stats"
  | E_app tag -> "app:" ^ tag

type topo_change =
  | Add_link of Topology.endpoint * Topology.endpoint
  | Remove_link of Topology.endpoint * Topology.endpoint
  | Add_switch of dpid
  | Remove_switch of dpid

type syscall =
  | Net_connect of { dst : ipv4; dst_port : int; payload : string }
  | File_open of { path : string; write : bool }
  | Spawn_process of string

type call =
  | Install_flow of dpid * Flow_mod.t
      (** Add/Modify/Delete per the flow-mod command; the permission
          engine distinguishes insert_flow vs delete_flow from it. *)
  | Read_flow_table of { dpid : dpid option; pattern : Match_fields.t option }
  | Read_topology
  | Modify_topology of topo_change
  | Read_stats of Stats.request
  | Send_packet_out of {
      dpid : dpid;
      port : port_no;  (** -1 = flood. *)
      packet : Packet.t;
      from_pkt_in : bool;  (** Replay of a buffered packet-in payload. *)
    }
  | Receive_event of event_kind
      (** Implicit call checked by the runtime before delivering an
          event to a listener. *)
  | Read_payload_access
      (** Implicit call checked before handing an app the payload bytes
          of a packet-in. *)
  | Publish_event of { tag : string; payload : string }
      (** Publish on an inter-app channel. *)
  | Syscall of syscall

type topology_view = {
  switches : dpid list;
  links : (Topology.endpoint * Topology.endpoint) list;
  hosts : Topology.host list;
}

type result =
  | Done
  | Flow_entries of (dpid * Stats.flow_stat list) list
  | Topology_of of topology_view
  | Stats_result of Stats.reply
  | Payload of string
  | Denied of string
  | Failed of string

let is_denied = function Denied _ -> true | _ -> false

(* Decisions produced by a permission checker. *)
type decision = Allow | Deny of string

(* Decision provenance (docs/OBSERVABILITY.md).  A checker that can
   explain itself reports where the decision came from — which cache
   level served it and, in prose, which permission token and filter
   clause granted or denied the call — so traces and forensic reports
   can show *why*, not just *what*. *)

type cache_outcome =
  | L1_hit  (** Served by the call-keyed fast path. *)
  | L2_hit  (** Served by the canonical-signature table. *)
  | Cache_miss  (** Evaluated, then cached. *)
  | Cache_bypass  (** The cache refused the lookup (uncacheable). *)
  | Uncached  (** No decision cache on this path. *)

let cache_outcome_to_string = function
  | L1_hit -> "l1-hit"
  | L2_hit -> "l2-hit"
  | Cache_miss -> "miss"
  | Cache_bypass -> "bypass"
  | Uncached -> "uncached"

type check_info = {
  cache : cache_outcome;
  explain : string option;
      (** Which token and top-level filter clause decided, e.g.
          ["token insert_flow: clause 2/3 failed: nw_dst 10.0.0.0 MASK
          255.0.0.0"]. *)
}

let no_check_info = { cache = Uncached; explain = None }

(** Coarse capabilities an app consumes, declared on the app and
    verified at load time (the paper's OSGi-level check, §VIII-B: when
    the app lacks the required tokens entirely, it is caught before any
    runtime checking is needed). *)
type capability =
  | Cap_flow_write
  | Cap_flow_read
  | Cap_topology_read
  | Cap_topology_write
  | Cap_stats
  | Cap_packet_out
  | Cap_payload
  | Cap_host_network
  | Cap_file_system
  | Cap_process

let capability_to_string = function
  | Cap_flow_write -> "flow-write"
  | Cap_flow_read -> "flow-read"
  | Cap_topology_read -> "topology-read"
  | Cap_topology_write -> "topology-write"
  | Cap_stats -> "statistics"
  | Cap_packet_out -> "packet-out"
  | Cap_payload -> "payload"
  | Cap_host_network -> "host-network"
  | Cap_file_system -> "file-system"
  | Cap_process -> "process"

(** A pluggable permission checker.  The controller libraries never
    depend on the SDNShield core: the runtimes accept any checker, with
    [allow_all] reproducing an unprotected (baseline) controller.

    Beyond allow/deny, a checker may rewrite an approved call into
    several concrete calls (virtual-topology translation, §VI-B1),
    combine their results, and vet the final result (visibility
    filtering of flow tables, topology and statistics). *)
type checker = {
  check : call -> decision;
  check_batch : (call array -> decision array) option;
      (** Batched variant of [check] for event storms and replayed
          traces: one verdict per call, in order, each decided exactly
          as [check] would decide it at that position (a batch is not a
          snapshot or a transaction).  [None] means the checker has no
          batch fast path; callers then loop over [check].
          Implementations amortize per-call overhead (dispatch,
          scratch setup, cache probes) across the array — see
          {!Sdnshield.Automaton.check_batch}. *)
  check_transaction : call list -> (unit, int * string) Stdlib.result;
      (** All-or-nothing pre-check of a call group; [Error (i, why)]
          identifies the first offending call. *)
  rewrite : call -> call list;
      (** Translate an approved abstract call to the concrete calls to
          execute.  Defaults to the identity singleton. *)
  combine : call -> result list -> result;
      (** Merge the results of the rewritten calls back into one result
          for the original call. *)
  vet_result : call -> result -> result;
      (** Filter the response before it reaches the app. *)
  observe : state_change -> unit;
      (** Notification hook the runtime calls for controller-internal
          state changes the checker must track — currently flow
          removals, so stateful checkers (ownership stores, rule
          budgets) can forget rules the switch expired on its own.
          Most checkers ignore it. *)
  granted : capability -> bool;
      (** Load-time token-presence test: does the policy grant the
          token(s) behind this capability at all?  Used by the
          runtime's load-time access control (§VIII-B). *)
  explain : (call -> decision * check_info) option;
      (** Explained variant of [check]: same decision (including any
          state recording), plus provenance for traces and forensic
          reports.  [None] means the checker cannot explain itself;
          traced runtimes then fall back to [check] with
          {!no_check_info}.  Implementations MUST decide exactly as
          [check] would — the traced and untraced runtimes must be
          behaviourally identical. *)
  snapshot : (unit -> checker) option;
      (** Epoch pinning for hot-swappable checkers (docs/CHURN.md).  A
          live-update deployment republishes an app's checker while
          traffic flows; a mediated call that consulted [check] from
          one epoch but [rewrite]/[vet_result] from the next would mix
          two manifests.  When set, the runtime calls [snapshot ()]
          once per mediated call and uses the returned checker — which
          must be immutable, with every entry point deciding against
          one consistent epoch — for all phases of that call.  The
          returned checker's own [snapshot] is ignored (no recursive
          resolution).  [None] means the checker is not swappable and
          is used directly.  Implementations must be cheap (one atomic
          load): this sits on the per-call hot path. *)
}

and state_change =
  | Flow_expired of { dpid : dpid; match_ : Match_fields.t; cookie : int }

let default_combine _call = function
  | [ r ] -> r
  | [] -> Failed "rewrite produced no calls"
  | r :: _ -> r

let allow_all =
  { check = (fun _ -> Allow);
    (* Deliberately [None]: checkers built with [{ allow_all with
       check = … }] must not inherit a batch path that contradicts
       their overridden [check]. *)
    check_batch = None;
    check_transaction = (fun _ -> Ok ());
    rewrite = (fun call -> [ call ]);
    combine = default_combine;
    vet_result = (fun _ r -> r);
    observe = (fun _ -> ());
    granted = (fun _ -> true);
    explain = None;
    snapshot = None }

let deny_all =
  { allow_all with
    check = (fun _ -> Deny "deny-all checker");
    check_transaction = (fun calls ->
      match calls with [] -> Ok () | _ -> Error (0, "deny-all checker"));
    granted = (fun _ -> false) }

(* Pretty-printing --------------------------------------------------------- *)

let pp_syscall ppf = function
  | Net_connect { dst; dst_port; _ } ->
    Fmt.pf ppf "net_connect %a:%d" pp_ipv4 dst dst_port
  | File_open { path; write } ->
    Fmt.pf ppf "file_open %s (%s)" path (if write then "w" else "r")
  | Spawn_process cmd -> Fmt.pf ppf "spawn %s" cmd

let pp_call ppf = function
  | Install_flow (d, fm) -> Fmt.pf ppf "install_flow s%d %a" d Flow_mod.pp fm
  | Read_flow_table { dpid; _ } ->
    Fmt.pf ppf "read_flow_table %a" Fmt.(option ~none:(any "all") int) dpid
  | Read_topology -> Fmt.string ppf "read_topology"
  | Modify_topology _ -> Fmt.string ppf "modify_topology"
  | Read_stats r -> Fmt.pf ppf "read_stats %a" Stats.pp_level r.level
  | Send_packet_out { dpid; port; _ } ->
    Fmt.pf ppf "packet_out s%d p%d" dpid port
  | Receive_event k -> Fmt.pf ppf "receive_event %s" (event_kind_to_string k)
  | Read_payload_access -> Fmt.string ppf "read_payload"
  | Publish_event { tag; _ } -> Fmt.pf ppf "publish_event %s" tag
  | Syscall s -> pp_syscall ppf s

(** Constant-string class of a call — the span label recorded on the
    traced hot path, where pretty-printing the full call would cost
    more than the mediation itself. *)
let call_kind = function
  | Install_flow _ -> "install_flow"
  | Read_flow_table _ -> "read_flow_table"
  | Read_topology -> "read_topology"
  | Modify_topology _ -> "modify_topology"
  | Read_stats _ -> "read_stats"
  | Send_packet_out _ -> "packet_out"
  | Receive_event _ -> "receive_event"
  | Read_payload_access -> "read_payload"
  | Publish_event _ -> "publish_event"
  | Syscall _ -> "syscall"

let pp_result ppf = function
  | Done -> Fmt.string ppf "done"
  | Flow_entries l -> Fmt.pf ppf "flow-entries(%d switches)" (List.length l)
  | Topology_of v -> Fmt.pf ppf "topology(%d switches)" (List.length v.switches)
  | Stats_result r -> Fmt.pf ppf "stats %a" Stats.pp_reply r
  | Payload p -> Fmt.pf ppf "payload(%d bytes)" (String.length p)
  | Denied why -> Fmt.pf ppf "DENIED: %s" why
  | Failed why -> Fmt.pf ppf "FAILED: %s" why
