(* Streaming health: a constant-memory sliding-window monitor.

   The process-start counters in [Telemetry] answer "how much, ever";
   an operator paging on a live deployment needs "how much, *lately*".
   This module aggregates the runtime's bad-news signals — permission
   denials, mediation faults, lifecycle rollbacks, deadline expiries,
   queue high-water, worst stage latency — over a sliding window made
   of a fixed ring of time buckets, and judges the totals against
   declarative thresholds to produce an Ok / Degraded / Unhealthy
   verdict with named causes.

   Memory is constant (one ring of plain-int buckets, no per-event
   allocation) and recording is a mutex + a handful of field writes,
   so the monitor can ride every mediated call.  The clock is
   injectable so window-slide behaviour (Degraded flipping back to
   Healthy once an incident ages out) is deterministically testable;
   production monitors default to {!Metrics.now}. *)

type status = Healthy | Degraded | Unhealthy

let status_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Unhealthy -> "unhealthy"

(** Prometheus-facing encoding: 0 = healthy, 1 = degraded,
    2 = unhealthy (bigger is worse, so alerts can be `> 0`). *)
let status_severity = function Healthy -> 0 | Degraded -> 1 | Unhealthy -> 2

(* Signals are keyed by name so rules stay declarative data.  Counters
   sum across the window; water marks ("queue-hwm", "stage-max-s")
   take the window max. *)
let signals =
  [ "denials"; "faults"; "rollbacks"; "deadline-expiries"; "queue-hwm";
    "stage-max-s" ]

type rule = {
  signal : string;
  degraded : float;  (** Windowed value >= this: at least Degraded. *)
  unhealthy : float;  (** Windowed value >= this: Unhealthy. *)
}

(** Conservative defaults, sized for the bundled demos and labs:
    injected faults degrade immediately, background rollbacks (an app
    market refusing invalid submissions is the system working) only
    degrade in bulk, and a stage that takes more than a second is
    news regardless of volume.  Operators pass their own list. *)
let default_rules =
  [ { signal = "faults"; degraded = 1.; unhealthy = 25. };
    { signal = "rollbacks"; degraded = 20.; unhealthy = 200. };
    { signal = "denials"; degraded = 500.; unhealthy = 5000. };
    { signal = "deadline-expiries"; degraded = 1.; unhealthy = 100. };
    { signal = "queue-hwm"; degraded = 256.; unhealthy = 2048. };
    { signal = "stage-max-s"; degraded = 1.; unhealthy = 10. } ]

type cause = {
  cause_signal : string;
  observed : float;
  threshold : float;  (** The threshold crossed (the higher one wins). *)
  level : status;
}

type verdict = {
  status : status;
  causes : cause list;  (** Every crossed rule, worst first. *)
  window : float;  (** Window length covered, seconds. *)
  totals : (string * float) list;  (** Windowed value per signal. *)
}

type bucket = {
  mutable stamp : int;  (** Absolute bucket index held; -1 = empty. *)
  mutable denials : int;
  mutable faults : int;
  mutable rollbacks : int;
  mutable deadlines : int;
  mutable queue_hwm : int;
  mutable stage_max : float;
}

type t = {
  clock : unit -> float;
  origin : float;
  span : float;  (** One bucket's length, seconds. *)
  buckets : bucket array;
  rules : rule list;
  mutex : Mutex.t;
}

let window t = t.span *. float_of_int (Array.length t.buckets)

(** [create ()] — a monitor covering the last [window] seconds
    (default 60) in [buckets] ring slots (default 12, i.e. 5s
    granularity at the default window).  [rules] are checked against
    windowed totals by {!verdict}; unknown signal names are rejected
    here rather than silently never firing.  [clock] (default
    {!Metrics.now}) exists for deterministic tests and demos. *)
let create ?clock ?(window = 60.) ?(buckets = 12) ?(rules = default_rules) ()
    =
  if not (window > 0.) then invalid_arg "Health.create: window must be > 0";
  if buckets <= 0 then invalid_arg "Health.create: buckets must be > 0";
  List.iter
    (fun r ->
      if not (List.mem r.signal signals) then
        invalid_arg ("Health.create: unknown signal " ^ r.signal))
    rules;
  let clock = match clock with Some f -> f | None -> Metrics.now in
  { clock;
    origin = clock ();
    span = window /. float_of_int buckets;
    buckets =
      Array.init buckets (fun _ ->
          { stamp = -1; denials = 0; faults = 0; rollbacks = 0;
            deadlines = 0; queue_hwm = 0; stage_max = 0. });
    rules;
    mutex = Mutex.create () }

(* The bucket for "now", recycled lazily: a slot whose stamp is not
   the current absolute index is stale by at least a full window and
   is reset in place.  Caller holds the lock. *)
let current_abs t =
  let dt = t.clock () -. t.origin in
  if dt <= 0. then 0 else int_of_float (dt /. t.span)

let slot t =
  let a = current_abs t in
  let b = t.buckets.(a mod Array.length t.buckets) in
  if b.stamp <> a then begin
    b.stamp <- a;
    b.denials <- 0;
    b.faults <- 0;
    b.rollbacks <- 0;
    b.deadlines <- 0;
    b.queue_hwm <- 0;
    b.stage_max <- 0.
  end;
  b

let with_slot t f =
  Mutex.lock t.mutex;
  f (slot t);
  Mutex.unlock t.mutex

let denial t = with_slot t (fun b -> b.denials <- b.denials + 1)
let fault t = with_slot t (fun b -> b.faults <- b.faults + 1)
let rollback t = with_slot t (fun b -> b.rollbacks <- b.rollbacks + 1)
let deadline t = with_slot t (fun b -> b.deadlines <- b.deadlines + 1)

let queue_depth t d =
  with_slot t (fun b -> if d > b.queue_hwm then b.queue_hwm <- d)

(** Record one stage (or call) duration in seconds; the window keeps
    the max. *)
let stage_latency t s =
  with_slot t (fun b -> if s > b.stage_max then b.stage_max <- s)

(** Windowed value per signal, in {!signals} order.  Counters sum over
    the live buckets; water marks take the max. *)
let totals t =
  Mutex.lock t.mutex;
  let a = current_abs t in
  let n = Array.length t.buckets in
  let denials = ref 0 and faults = ref 0 and rollbacks = ref 0 in
  let deadlines = ref 0 and queue_hwm = ref 0 in
  let stage_max = ref 0. in
  Array.iter
    (fun b ->
      if b.stamp > a - n && b.stamp >= 0 then begin
        denials := !denials + b.denials;
        faults := !faults + b.faults;
        rollbacks := !rollbacks + b.rollbacks;
        deadlines := !deadlines + b.deadlines;
        if b.queue_hwm > !queue_hwm then queue_hwm := b.queue_hwm;
        if b.stage_max > !stage_max then stage_max := b.stage_max
      end)
    t.buckets;
  Mutex.unlock t.mutex;
  [ ("denials", float_of_int !denials);
    ("faults", float_of_int !faults);
    ("rollbacks", float_of_int !rollbacks);
    ("deadline-expiries", float_of_int !deadlines);
    ("queue-hwm", float_of_int !queue_hwm);
    ("stage-max-s", !stage_max) ]

let verdict t : verdict =
  let totals = totals t in
  let causes =
    List.filter_map
      (fun r ->
        match List.assoc_opt r.signal totals with
        | None -> None
        | Some v ->
          if v >= r.unhealthy then
            Some
              { cause_signal = r.signal; observed = v;
                threshold = r.unhealthy; level = Unhealthy }
          else if v >= r.degraded then
            Some
              { cause_signal = r.signal; observed = v;
                threshold = r.degraded; level = Degraded }
          else None)
      t.rules
  in
  let causes =
    List.stable_sort
      (fun a b -> compare (status_severity b.level) (status_severity a.level))
      causes
  in
  let status =
    List.fold_left
      (fun acc c ->
        if status_severity c.level > status_severity acc then c.level else acc)
      Healthy causes
  in
  { status; causes; window = window t; totals }

let pp_cause ppf c =
  Fmt.pf ppf "%s: %s %g >= %g" (status_to_string c.level) c.cause_signal
    c.observed c.threshold

let pp_verdict ppf (v : verdict) =
  Fmt.pf ppf "@[<v>health: %s (window %gs)" (status_to_string v.status)
    v.window;
  List.iter (fun c -> Fmt.pf ppf "@,  cause %a" pp_cause c) v.causes;
  List.iter (fun (k, x) -> Fmt.pf ppf "@,  %-18s %g" k x) v.totals;
  Fmt.pf ppf "@]"
