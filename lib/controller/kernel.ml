(* The trusted controller kernel: executes approved API calls against
   the simulated data plane and collects the follow-on events (flow
   removals, packet-ins caused by packet-outs, topology changes) for the
   runtime to dispatch. *)

open Shield_openflow
open Shield_net

type t = {
  dataplane : Dataplane.t;
  sandbox : Sandbox.t;
  reflect_packet_out : bool;
      (** When true, table misses caused by app packet-outs are turned
          back into packet-in events.  Off by default: flooded
          packet-outs would broadcast-storm a loopy/linear topology
          exactly as real L2 floods do without spanning tree, and the
          CBench-style evaluation methodology treats the generator as
          the only packet-in source. *)
  mutable pending : Events.t list;  (** Reverse order. *)
  mutable delivery_log : (string * Dataplane.delivery) list;
      (** Packets delivered to hosts by app packet-outs, tagged with the
          issuing app — the data-plane observable the attack tests
          assert on. *)
  mutable execs : int;
      (** Approved calls executed — the enforcement hot path's volume,
          reported next to the cache hit rates. *)
}

let create ?(sandbox = Sandbox.create ()) ?(reflect_packet_out = false)
    dataplane =
  { dataplane; sandbox; reflect_packet_out; pending = []; delivery_log = [];
    execs = 0 }

let exec_count t = t.execs

let deliveries t = List.rev t.delivery_log

let topo t = t.dataplane.Dataplane.topo

let queue_event t ev = t.pending <- ev :: t.pending

(** Pop all queued events in dispatch order. *)
let take_pending t =
  let evs = List.rev t.pending in
  t.pending <- [];
  evs

let topology_view t : Api.topology_view =
  let topo = topo t in
  { Api.switches = List.sort compare (Topology.switches topo);
    links =
      List.map (fun (l : Topology.link) -> (l.src, l.dst))
        (Topology.undirected_links topo);
    hosts = Topology.hosts topo }

let punts_to_events (r : Dataplane.result) =
  List.map
    (fun (p : Dataplane.punt) ->
      Events.Packet_in
        { Message.dpid = p.dpid; in_port = p.in_port; packet = p.packet;
          reason = Message.No_match; buffer_id = None })
    r.punted

(** Execute a permission-approved call on behalf of [app].  Flow-mods
    whose cookie is unset are stamped with the app's [cookie] so that
    ownership stays attributable. *)
let exec t ~app ~cookie (call : Api.call) : Api.result =
  Faults.point Faults.Kernel_exec;
  t.execs <- t.execs + 1;
  match call with
  | Api.Install_flow (dpid, fm) -> (
    match Dataplane.switch_opt t.dataplane dpid with
    | None -> Api.Failed (Printf.sprintf "unknown switch %d" dpid)
    | Some _ ->
      let fm = if fm.Flow_mod.cookie = 0 then { fm with cookie } else fm in
      let removed = Dataplane.apply_flow_mod t.dataplane dpid fm in
      List.iter
        (fun (e : Flow_table.entry) ->
          queue_event t
            (Events.Flow_removed { dpid; match_ = e.match_; cookie = e.cookie }))
        removed;
      Api.Done)
  | Api.Read_flow_table { dpid; pattern } ->
    let req = { Stats.level = Stats.Flow_level; dpid_filter = dpid; match_filter = pattern } in
    (match Dataplane.stats t.dataplane req with
    | Stats.Flow_stats l -> Api.Flow_entries l
    | _ -> Api.Failed "unexpected stats shape")
  | Api.Read_topology -> Api.Topology_of (topology_view t)
  | Api.Modify_topology change ->
    let topo = topo t in
    (match change with
    | Api.Add_link (a, b) -> Topology.add_link topo ~src:a ~dst:b
    | Api.Remove_link (a, b) -> Topology.remove_link topo ~src:a ~dst:b
    | Api.Add_switch d -> Topology.add_switch topo d
    | Api.Remove_switch d -> Topology.remove_switch topo d);
    queue_event t (Events.Topology_changed change);
    Api.Done
  | Api.Read_stats req -> Api.Stats_result (Dataplane.stats t.dataplane req)
  | Api.Send_packet_out { dpid; port; packet; _ } -> (
    match Dataplane.switch_opt t.dataplane dpid with
    | None -> Api.Failed (Printf.sprintf "unknown switch %d" dpid)
    | Some _ ->
      let r = Dataplane.packet_out t.dataplane ~dpid ~port packet in
      t.delivery_log <-
        List.map (fun d -> (app, d)) r.Dataplane.delivered @ t.delivery_log;
      if t.reflect_packet_out then List.iter (queue_event t) (punts_to_events r);
      Api.Done)
  | Api.Receive_event _ | Api.Read_payload_access ->
    (* Implicit calls: checked by the runtime, nothing to execute. *)
    Api.Done
  | Api.Publish_event { tag; payload } ->
    queue_event t (Events.App_published { source = app; tag; payload });
    Api.Done
  | Api.Syscall sc -> Sandbox.execute t.sandbox ~app sc
