(* Latency/throughput sample collection with percentile summaries, plus
   a process-wide registry of cache hit/miss counters.

   The end-to-end experiments (Figures 6–8) report medians with 10/90
   percentile error bars; this module computes exactly those.  Samples
   live in a growable flat array behind the mutex, so recording is O(1)
   amortised with no per-sample allocation and summaries are one
   array copy + sort — no list-to-array conversions on the hot path
   under domain parallelism.

   The cache registry is how the decision caches and normal-form memo
   tables in [lib/core] surface their hit rates to the runtimes, the
   benchmarks and the CLI without a dependency cycle: producers
   register a stats thunk under a name; consumers call
   [cache_report]. *)

(* Monotonic time -------------------------------------------------------- *)

(* All latency measurement in the runtime goes through [now]: a
   monotonic clock (CLOCK_MONOTONIC via the bechamel stub, already a
   build dependency of the bench harness) whose epoch is arbitrary but
   which never jumps backwards — an NTP step during a measured interval
   cannot produce a negative span.  Only durations ([now () -. start])
   are meaningful; never compare these values to wall-clock time. *)
let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type t = {
  mutable buf : float array;  (** Seconds; first [count] slots valid. *)
  mutable count : int;
  mutex : Mutex.t;
}

let initial_capacity = 64

let create () =
  { buf = Array.make initial_capacity 0.; count = 0; mutex = Mutex.create () }

let record t v =
  Mutex.lock t.mutex;
  if t.count = Array.length t.buf then begin
    let bigger = Array.make (2 * Array.length t.buf) 0. in
    Array.blit t.buf 0 bigger 0 t.count;
    t.buf <- bigger
  end;
  t.buf.(t.count) <- v;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let count t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

(** A consistent copy of the recorded samples, in recording order
    (oldest first).  The list representation this module once used
    exposed newest-first; that inversion leaked into the interface and
    callers treated the result as recording order anyway, so the
    recording order is now the documented contract. *)
let samples t =
  Mutex.lock t.mutex;
  let arr = Array.sub t.buf 0 t.count in
  Mutex.unlock t.mutex;
  Array.to_list arr

(** [percentile_sorted p arr] with [arr] ascending and [p] in [0,100],
    by linear interpolation between the two closest ranks (the
    convention NumPy calls "linear" — NOT nearest-rank: p50 of
    [|1.; 2.|] is 1.5, where nearest-rank would give 1. or 2.).
    Edge cases: the empty array yields [nan]; a single sample is
    returned for every [p]. *)
let percentile_sorted p (arr : float array) =
  let n = Array.length arr in
  if n = 0 then nan
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  end

(** List-based variant of {!percentile_sorted}, kept for callers that
    already hold a sorted list. *)
let percentile p sorted = percentile_sorted p (Array.of_list sorted)

type summary = {
  n : int;
  median : float;
  p10 : float;
  p90 : float;
  mean : float;
  min : float;
  max : float;
}

let summarize t =
  Mutex.lock t.mutex;
  let arr = Array.sub t.buf 0 t.count in
  Mutex.unlock t.mutex;
  let n = Array.length arr in
  if n = 0 then
    { n = 0; median = nan; p10 = nan; p90 = nan; mean = nan; min = nan;
      max = nan }
  else begin
    (* [Float.compare], not polymorphic [compare]: same order on
       ordinary floats, but monomorphic (no generic-compare dispatch
       per element) and with a total, documented NaN order instead of
       the polymorphic comparator's unspecified NaN behaviour. *)
    Array.sort Float.compare arr;
    { n;
      median = percentile_sorted 50. arr;
      p10 = percentile_sorted 10. arr;
      p90 = percentile_sorted 90. arr;
      mean = Array.fold_left ( +. ) 0. arr /. float_of_int n;
      min = arr.(0);
      max = arr.(n - 1) }
  end

let summarize_list values =
  let t = create () in
  List.iter (record t) values;
  summarize t

(** Time an action on the monotonic clock, recording the elapsed
    seconds. *)
let time t f =
  let start = now () in
  let r = f () in
  record t (now () -. start);
  r

let pp_summary ppf s =
  Fmt.pf ppf "n=%d median=%.1fus p10=%.1fus p90=%.1fus" s.n (s.median *. 1e6)
    (s.p10 *. 1e6) (s.p90 *. 1e6)

(* Cache-counter registry --------------------------------------------------- *)

type cache_stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** Entries discarded for a stale generation. *)
  evictions : int;  (** Entries discarded for capacity. *)
  bypasses : int;  (** Lookups the cache refused to serve (uncacheable). *)
}

let zero_cache_stats =
  { hits = 0; misses = 0; invalidations = 0; evictions = 0; bypasses = 0 }

let hit_rate (s : cache_stats) =
  let total = s.hits + s.misses in
  if total = 0 then nan else float_of_int s.hits /. float_of_int total

let registry : (string, unit -> cache_stats) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

(** Register (or replace) the stats source for cache [name].
    Re-registration replaces, so short-lived caches (one engine per
    benchmark iteration) do not grow the registry. *)
let register_cache name read =
  Mutex.lock registry_mutex;
  Hashtbl.replace registry name read;
  Mutex.unlock registry_mutex

let unregister_cache name =
  Mutex.lock registry_mutex;
  Hashtbl.remove registry name;
  Mutex.unlock registry_mutex

(** Snapshot every registered cache, sorted by name. *)
let cache_report () : (string * cache_stats) list =
  Mutex.lock registry_mutex;
  let sources = Hashtbl.fold (fun name read acc -> (name, read) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare (List.map (fun (name, read) -> (name, read ())) sources)

let pp_cache_stats ppf (s : cache_stats) =
  Fmt.pf ppf "hits=%d misses=%d invalidations=%d evictions=%d bypasses=%d"
    s.hits s.misses s.invalidations s.evictions s.bypasses;
  if s.hits + s.misses > 0 then Fmt.pf ppf " hit-rate=%.1f%%" (100. *. hit_rate s)

let pp_cache_report ppf () =
  match cache_report () with
  | [] -> Fmt.pf ppf "no caches registered@."
  | report ->
    List.iter
      (fun (name, s) -> Fmt.pf ppf "%-24s %a@." name pp_cache_stats s)
      report

(* Queue-depth gauge registry ------------------------------------------------ *)

(* Same pattern as the cache registry, for live queue depths: the
   runtimes register a reading thunk per channel (request queue, per-app
   event queue) so benchmarks and reports can show where backpressure
   is building without reaching into runtime internals. *)

type gauge = {
  depth : int;  (** Current queue depth. *)
  hwm : int;  (** High-water mark since creation. *)
}

let gauge_registry : (string, unit -> gauge) Hashtbl.t = Hashtbl.create 8
let gauge_mutex = Mutex.create ()

(** Register (or replace) the reading source for gauge [name].
    Re-registration replaces, so short-lived runtimes do not grow the
    registry; {!unregister_gauge} on shutdown keeps reports scoped to
    live runtimes. *)
let register_gauge name read =
  Mutex.lock gauge_mutex;
  Hashtbl.replace gauge_registry name read;
  Mutex.unlock gauge_mutex

let unregister_gauge name =
  Mutex.lock gauge_mutex;
  Hashtbl.remove gauge_registry name;
  Mutex.unlock gauge_mutex

(** Snapshot every registered gauge, sorted by name. *)
let gauge_report () : (string * gauge) list =
  Mutex.lock gauge_mutex;
  let sources =
    Hashtbl.fold (fun name read acc -> (name, read) :: acc) gauge_registry []
  in
  Mutex.unlock gauge_mutex;
  List.sort compare (List.map (fun (name, read) -> (name, read ())) sources)

let pp_gauge_report ppf () =
  List.iter
    (fun (name, g) ->
      Fmt.pf ppf "%-24s depth=%d high-water=%d@." name g.depth g.hwm)
    (gauge_report ())

(* Bounded log-linear latency histograms ------------------------------------ *)

(* [t] above keeps every sample, which is exact but unbounded: a
   production runtime serving millions of calls cannot afford a float
   per call just to answer "what is p90 latency?".  [Histogram] is the
   constant-memory companion (HDR-histogram style): each power-of-two
   octave of the 1µs..10s range is split into [sub] linear sub-buckets,
   so the relative resolution is 1/sub (6.25%) everywhere and the whole
   structure is one int array.  Histograms with the same geometry merge
   by adding counts (the geometry is fixed per process), so per-domain
   histograms can be combined without locks on the recording path of
   other domains. *)
module Histogram = struct
  let sub_bits = 4
  let sub = 1 lsl sub_bits  (** Linear sub-buckets per octave: 16. *)

  let octaves = 24
  (** 2^24 µs ≈ 16.8 s ≥ the 10 s design ceiling. *)

  let buckets = octaves * sub

  type t = {
    counts : int array;  (** [buckets] in-range cells. *)
    mutable underflow : int;  (** Samples below 1 µs. *)
    mutable overflow : int;  (** Samples at or above 2^24 µs. *)
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
    hmutex : Mutex.t;
  }

  let create () =
    { counts = Array.make buckets 0; underflow = 0; overflow = 0; sum = 0.;
      vmin = infinity; vmax = neg_infinity; hmutex = Mutex.create () }

  (** Bucket index of a duration [v] in seconds: [-1] = underflow,
      [buckets] = overflow, else the in-range cell.  Non-finite and
      negative values are treated as underflow (they cannot perturb
      percentiles upward). *)
  let bucket_index v =
    let u = v *. 1e6 in
    if not (Float.is_finite u) || u < 1. then -1
    else begin
      let m, e = Float.frexp u in
      (* u >= 1, so e >= 1; u = m * 2^e with m in [0.5, 1). *)
      let oct = e - 1 in
      if oct >= octaves then buckets
      else (oct * sub) + int_of_float ((m -. 0.5) *. float_of_int (2 * sub))
    end

  (** Closed-open bounds [(lo, hi)] of in-range bucket [i], seconds. *)
  let bucket_bounds i =
    let oct = i / sub and j = i mod sub in
    let base = Float.ldexp 1e-6 oct in
    ( base *. (1. +. (float_of_int j /. float_of_int sub)),
      base *. (1. +. (float_of_int (j + 1) /. float_of_int sub)) )

  (** Midpoint representative of bucket [i], seconds. *)
  let bucket_mid i =
    let lo, hi = bucket_bounds i in
    (lo +. hi) /. 2.

  let record t v =
    Mutex.lock t.hmutex;
    (match bucket_index v with
    | -1 -> t.underflow <- t.underflow + 1
    | i when i >= buckets -> t.overflow <- t.overflow + 1
    | i -> t.counts.(i) <- t.counts.(i) + 1);
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v;
    Mutex.unlock t.hmutex

  let count t =
    Mutex.lock t.hmutex;
    let n =
      t.underflow + t.overflow + Array.fold_left ( + ) 0 t.counts
    in
    Mutex.unlock t.hmutex;
    n

  (** [merge a b] — a fresh histogram holding both datasets.  Merging
      is associative and commutative (counts add, min/max combine), so
      per-domain histograms fold into one in any order. *)
  let merge a b =
    let m = create () in
    let add src =
      Mutex.lock src.hmutex;
      Array.iteri (fun i c -> m.counts.(i) <- m.counts.(i) + c) src.counts;
      m.underflow <- m.underflow + src.underflow;
      m.overflow <- m.overflow + src.overflow;
      m.sum <- m.sum +. src.sum;
      if src.vmin < m.vmin then m.vmin <- src.vmin;
      if src.vmax > m.vmax then m.vmax <- src.vmax;
      Mutex.unlock src.hmutex
    in
    add a;
    add b;
    m

  (** Nearest-rank percentile estimate: the representative of the
      bucket holding the ⌈p/100·n⌉-th smallest sample, clamped to the
      observed min/max so under/overflow samples answer exactly.  The
      true nearest-rank sample lies in the returned bucket, so the
      estimate is within one bucket width (1/16 of an octave, 6.25%
      relative) of it.  [nan] on an empty histogram; [p] outside
      [0,100] is clamped. *)
  let percentile t p =
    Mutex.lock t.hmutex;
    let in_range = Array.fold_left ( + ) 0 t.counts in
    let n = t.underflow + t.overflow + in_range in
    let r =
      if n = 0 then nan
      else begin
        let p = Float.max 0. (Float.min 100. p) in
        let rank =
          Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int n)))
        in
        if rank <= t.underflow then t.vmin
        else begin
          let rec walk i acc =
            if i >= buckets then t.vmax
            else
              let acc = acc + t.counts.(i) in
              if acc >= rank then
                (* Clamp into the observed range: a bucket midpoint can
                   overshoot the true max when the top sample sits low
                   in its bucket. *)
                Float.max t.vmin (Float.min t.vmax (bucket_mid i))
              else walk (i + 1) acc
          in
          walk 0 t.underflow
        end
      end
    in
    Mutex.unlock t.hmutex;
    r

  (** A consistent snapshot for exporters: totals plus the non-empty
      buckets as [(lo, hi, count)] in ascending order. *)
  type export = {
    n : int;
    sum : float;
    min : float;  (** [nan] when empty. *)
    max : float;  (** [nan] when empty. *)
    underflow : int;
    overflow : int;
    cells : (float * float * int) list;
  }

  let export t : export =
    Mutex.lock t.hmutex;
    let cells = ref [] in
    for i = buckets - 1 downto 0 do
      if t.counts.(i) > 0 then begin
        let lo, hi = bucket_bounds i in
        cells := (lo, hi, t.counts.(i)) :: !cells
      end
    done;
    let in_range = Array.fold_left ( + ) 0 t.counts in
    let n = t.underflow + t.overflow + in_range in
    let e =
      { n; sum = t.sum;
        min = (if n = 0 then nan else t.vmin);
        max = (if n = 0 then nan else t.vmax);
        underflow = t.underflow; overflow = t.overflow; cells = !cells }
    in
    Mutex.unlock t.hmutex;
    e

  let pp ppf t =
    let e = export t in
    if e.n = 0 then Fmt.pf ppf "empty"
    else
      Fmt.pf ppf "n=%d mean=%.1fus p50=%.1fus p90=%.1fus p99=%.1fus max=%.1fus"
        e.n
        (e.sum /. float_of_int e.n *. 1e6)
        (percentile t 50. *. 1e6) (percentile t 90. *. 1e6)
        (percentile t 99. *. 1e6) (e.max *. 1e6)
end

(* Histogram registry -------------------------------------------------------- *)

(* Same shape as the cache and gauge registries: the runtimes record
   per-stage and per-app latencies under stable names
   (["lat:check"], ["lat:app:<name>"], …) and exporters snapshot them
   all through [hist_report].  [hist] creates on first use so
   instrumentation sites need no setup order. *)

let hist_registry : (string, Histogram.t) Hashtbl.t = Hashtbl.create 8
let hist_mutex = Mutex.create ()

(** The histogram registered under [name], created empty on first
    use. *)
let hist name =
  Mutex.lock hist_mutex;
  let h =
    match Hashtbl.find_opt hist_registry name with
    | Some h -> h
    | None ->
      let h = Histogram.create () in
      Hashtbl.add hist_registry name h;
      h
  in
  Mutex.unlock hist_mutex;
  h

let unregister_hist name =
  Mutex.lock hist_mutex;
  Hashtbl.remove hist_registry name;
  Mutex.unlock hist_mutex

(** Every registered histogram, sorted by name. *)
let hist_report () : (string * Histogram.t) list =
  Mutex.lock hist_mutex;
  let hs = Hashtbl.fold (fun name h acc -> (name, h) :: acc) hist_registry [] in
  Mutex.unlock hist_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) hs

let pp_hist_report ppf () =
  List.iter
    (fun (name, h) -> Fmt.pf ppf "%-24s %a@." name Histogram.pp h)
    (hist_report ())
