(* Latency/throughput sample collection with percentile summaries, plus
   a process-wide registry of cache hit/miss counters.

   The end-to-end experiments (Figures 6–8) report medians with 10/90
   percentile error bars; this module computes exactly those.  Samples
   live in a growable flat array behind the mutex, so recording is O(1)
   amortised with no per-sample allocation and summaries are one
   array copy + sort — no list-to-array conversions on the hot path
   under domain parallelism.

   The cache registry is how the decision caches and normal-form memo
   tables in [lib/core] surface their hit rates to the runtimes, the
   benchmarks and the CLI without a dependency cycle: producers
   register a stats thunk under a name; consumers call
   [cache_report]. *)

type t = {
  mutable buf : float array;  (** Seconds; first [count] slots valid. *)
  mutable count : int;
  mutex : Mutex.t;
}

let initial_capacity = 64

let create () =
  { buf = Array.make initial_capacity 0.; count = 0; mutex = Mutex.create () }

let record t v =
  Mutex.lock t.mutex;
  if t.count = Array.length t.buf then begin
    let bigger = Array.make (2 * Array.length t.buf) 0. in
    Array.blit t.buf 0 bigger 0 t.count;
    t.buf <- bigger
  end;
  t.buf.(t.count) <- v;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let count t =
  Mutex.lock t.mutex;
  let n = t.count in
  Mutex.unlock t.mutex;
  n

(** A consistent copy of the recorded samples, newest first (the order
    the old list representation exposed). *)
let samples t =
  Mutex.lock t.mutex;
  let arr = Array.sub t.buf 0 t.count in
  Mutex.unlock t.mutex;
  List.rev (Array.to_list arr)

(** [percentile_sorted p arr] with [arr] ascending and [p] in [0,100],
    by linear interpolation between the two closest ranks (the
    convention NumPy calls "linear" — NOT nearest-rank: p50 of
    [|1.; 2.|] is 1.5, where nearest-rank would give 1. or 2.).
    Edge cases: the empty array yields [nan]; a single sample is
    returned for every [p]. *)
let percentile_sorted p (arr : float array) =
  let n = Array.length arr in
  if n = 0 then nan
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
  end

(** List-based variant of {!percentile_sorted}, kept for callers that
    already hold a sorted list. *)
let percentile p sorted = percentile_sorted p (Array.of_list sorted)

type summary = {
  n : int;
  median : float;
  p10 : float;
  p90 : float;
  mean : float;
  min : float;
  max : float;
}

let summarize t =
  Mutex.lock t.mutex;
  let arr = Array.sub t.buf 0 t.count in
  Mutex.unlock t.mutex;
  let n = Array.length arr in
  if n = 0 then
    { n = 0; median = nan; p10 = nan; p90 = nan; mean = nan; min = nan;
      max = nan }
  else begin
    Array.sort compare arr;
    { n;
      median = percentile_sorted 50. arr;
      p10 = percentile_sorted 10. arr;
      p90 = percentile_sorted 90. arr;
      mean = Array.fold_left ( +. ) 0. arr /. float_of_int n;
      min = arr.(0);
      max = arr.(n - 1) }
  end

let summarize_list values =
  let t = create () in
  List.iter (record t) values;
  summarize t

(** Wall-clock an action, recording the elapsed time. *)
let time t f =
  let start = Unix.gettimeofday () in
  let r = f () in
  record t (Unix.gettimeofday () -. start);
  r

let pp_summary ppf s =
  Fmt.pf ppf "n=%d median=%.1fus p10=%.1fus p90=%.1fus" s.n (s.median *. 1e6)
    (s.p10 *. 1e6) (s.p90 *. 1e6)

(* Cache-counter registry --------------------------------------------------- *)

type cache_stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** Entries discarded for a stale generation. *)
  evictions : int;  (** Entries discarded for capacity. *)
  bypasses : int;  (** Lookups the cache refused to serve (uncacheable). *)
}

let zero_cache_stats =
  { hits = 0; misses = 0; invalidations = 0; evictions = 0; bypasses = 0 }

let hit_rate (s : cache_stats) =
  let total = s.hits + s.misses in
  if total = 0 then nan else float_of_int s.hits /. float_of_int total

let registry : (string, unit -> cache_stats) Hashtbl.t = Hashtbl.create 8
let registry_mutex = Mutex.create ()

(** Register (or replace) the stats source for cache [name].
    Re-registration replaces, so short-lived caches (one engine per
    benchmark iteration) do not grow the registry. *)
let register_cache name read =
  Mutex.lock registry_mutex;
  Hashtbl.replace registry name read;
  Mutex.unlock registry_mutex

let unregister_cache name =
  Mutex.lock registry_mutex;
  Hashtbl.remove registry name;
  Mutex.unlock registry_mutex

(** Snapshot every registered cache, sorted by name. *)
let cache_report () : (string * cache_stats) list =
  Mutex.lock registry_mutex;
  let sources = Hashtbl.fold (fun name read acc -> (name, read) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare (List.map (fun (name, read) -> (name, read ())) sources)

let pp_cache_stats ppf (s : cache_stats) =
  Fmt.pf ppf "hits=%d misses=%d invalidations=%d evictions=%d bypasses=%d"
    s.hits s.misses s.invalidations s.evictions s.bypasses;
  if s.hits + s.misses > 0 then Fmt.pf ppf " hit-rate=%.1f%%" (100. *. hit_rate s)

let pp_cache_report ppf () =
  match cache_report () with
  | [] -> Fmt.pf ppf "no caches registered@."
  | report ->
    List.iter
      (fun (name, s) -> Fmt.pf ppf "%-24s %a@." name pp_cache_stats s)
      report

(* Queue-depth gauge registry ------------------------------------------------ *)

(* Same pattern as the cache registry, for live queue depths: the
   runtimes register a reading thunk per channel (request queue, per-app
   event queue) so benchmarks and reports can show where backpressure
   is building without reaching into runtime internals. *)

type gauge = {
  depth : int;  (** Current queue depth. *)
  hwm : int;  (** High-water mark since creation. *)
}

let gauge_registry : (string, unit -> gauge) Hashtbl.t = Hashtbl.create 8
let gauge_mutex = Mutex.create ()

(** Register (or replace) the reading source for gauge [name].
    Re-registration replaces, so short-lived runtimes do not grow the
    registry; {!unregister_gauge} on shutdown keeps reports scoped to
    live runtimes. *)
let register_gauge name read =
  Mutex.lock gauge_mutex;
  Hashtbl.replace gauge_registry name read;
  Mutex.unlock gauge_mutex

let unregister_gauge name =
  Mutex.lock gauge_mutex;
  Hashtbl.remove gauge_registry name;
  Mutex.unlock gauge_mutex

(** Snapshot every registered gauge, sorted by name. *)
let gauge_report () : (string * gauge) list =
  Mutex.lock gauge_mutex;
  let sources =
    Hashtbl.fold (fun name read acc -> (name, read) :: acc) gauge_registry []
  in
  Mutex.unlock gauge_mutex;
  List.sort compare (List.map (fun (name, read) -> (name, read ())) sources)

let pp_gauge_report ppf () =
  List.iter
    (fun (name, g) ->
      Fmt.pf ppf "%-24s depth=%d high-water=%d@." name g.depth g.hwm)
    (gauge_report ())
