(* Blocking channel built on Mutex + Condition, optionally bounded.

   This is the inter-thread communication utility of the isolation
   architecture (§VIII-B of the paper): app threads and Kernel Service
   Deputy threads exchange events and API requests through these
   queues.

   A channel created without [capacity] behaves as before: pushes never
   block.  With a capacity, a full channel applies its overflow
   [policy]: [Block] parks the pusher until a consumer makes room
   (backpressure — a flooding producer saturates its own queue instead
   of the heap), [Reject] raises [Full] so the caller can turn the
   overflow into an application-level error.  The high-water mark is
   tracked so runtimes can report worst-case queue depths. *)

type policy =
  | Block  (** Full channel: park the pusher until space frees up. *)
  | Reject  (** Full channel: raise {!Full} immediately. *)

type 'a t = {
  queue : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  capacity : int option;  (** [None] = unbounded. *)
  policy : policy;
  mutable high_water : int;
  mutable closed : bool;
}

let create ?capacity ?(policy = Block) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Channel.create: capacity must be > 0"
  | _ -> ());
  { queue = Queue.create (); mutex = Mutex.create ();
    nonempty = Condition.create (); nonfull = Condition.create ();
    capacity; policy; high_water = 0; closed = false }

exception Closed
exception Full

let is_full t =
  match t.capacity with
  | Some c -> Queue.length t.queue >= c
  | None -> false

(** Push [v]; raises [Closed] after [close].  On a full bounded channel
    the overflow policy applies: [Block] waits (and still raises
    [Closed] if the channel closes while waiting), [Reject] raises
    [Full]. *)
let push t v =
  Mutex.lock t.mutex;
  let rec wait () =
    if t.closed then begin
      Mutex.unlock t.mutex;
      raise Closed
    end
    else if is_full t then
      match t.policy with
      | Reject ->
        Mutex.unlock t.mutex;
        raise Full
      | Block ->
        Condition.wait t.nonfull t.mutex;
        wait ()
    else begin
      Queue.push v t.queue;
      let n = Queue.length t.queue in
      if n > t.high_water then t.high_water <- n;
      Condition.signal t.nonempty;
      Mutex.unlock t.mutex
    end
  in
  wait ()

(** Block until an element is available; [None] once the channel is
    closed and drained. *)
let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.queue) then begin
      let v = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Mutex.unlock t.mutex;
      Some v
    end
    else if t.closed then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  wait ()

let try_pop t =
  Mutex.lock t.mutex;
  let v =
    if Queue.is_empty t.queue then None
    else begin
      let v = Queue.pop t.queue in
      Condition.signal t.nonfull;
      Some v
    end
  in
  Mutex.unlock t.mutex;
  v

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

(** Worst queue depth observed since creation. *)
let high_water t =
  Mutex.lock t.mutex;
  let n = t.high_water in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity

(** Close the channel: pending elements remain poppable, further pushes
    raise, blocked poppers *and* blocked pushers are woken. *)
let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull;
  Mutex.unlock t.mutex

(* Single-assignment synchronization cell (reply slot for API calls). *)
module Ivar = struct
  type 'a t = {
    mutable value : 'a option;
    mutex : Mutex.t;
    filled : Condition.t;
  }

  let create () =
    { value = None; mutex = Mutex.create (); filled = Condition.create () }

  let fill t v =
    Mutex.lock t.mutex;
    (match t.value with
    | Some _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Ivar.fill: already filled"
    | None ->
      t.value <- Some v;
      Condition.broadcast t.filled;
      Mutex.unlock t.mutex)

  let read t =
    Mutex.lock t.mutex;
    let rec wait () =
      match t.value with
      | Some v ->
        Mutex.unlock t.mutex;
        v
      | None ->
        Condition.wait t.filled t.mutex;
        wait ()
    in
    wait ()

  (** [read_timeout t d] — the value, or [None] if none arrives within
      [d] seconds.  Stdlib conditions have no timed wait, so the slow
      path polls with exponential backoff (50µs doubling to 5ms): a
      promptly filled ivar is picked up within microseconds, and an
      abandoned one costs a handful of wakeups before the deadline
      verdict.  The deadline is a floor — a value arriving just after
      expiry may still be returned, never the reverse. *)
  let read_timeout t d =
    let deadline = Unix.gettimeofday () +. d in
    let rec wait delay =
      Mutex.lock t.mutex;
      match t.value with
      | Some v ->
        Mutex.unlock t.mutex;
        Some v
      | None ->
        Mutex.unlock t.mutex;
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0. then None
        else begin
          Thread.delay (Float.min delay remaining);
          wait (Float.min (delay *. 2.) 5e-3)
        end
    in
    wait 5e-5
end

(* Countdown latch: event-dispatch completion barrier. *)
module Latch = struct
  type t = {
    mutable remaining : int;
    mutex : Mutex.t;
    zero : Condition.t;
  }

  let create n = { remaining = n; mutex = Mutex.create (); zero = Condition.create () }

  let count_down t =
    Mutex.lock t.mutex;
    t.remaining <- t.remaining - 1;
    if t.remaining <= 0 then Condition.broadcast t.zero;
    Mutex.unlock t.mutex

  let wait t =
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.zero t.mutex
    done;
    Mutex.unlock t.mutex
end
