(** Blocking channel built on Mutex + Condition, optionally bounded.

    The inter-thread communication utility of the isolation
    architecture (§VIII-B of the paper): app threads and Kernel Service
    Deputy threads exchange events and API requests through these
    queues.

    Without [capacity] a channel is unbounded and pushes never block.
    With one, a full channel applies its overflow {!policy}: [Block]
    parks the pusher until a consumer makes room (backpressure — a
    flooding producer saturates its own queue instead of the heap),
    [Reject] raises {!Full} so the caller can turn the overflow into an
    application-level error.  The failure model built on these
    primitives is documented in docs/RUNTIME.md. *)

type policy =
  | Block  (** Full channel: park the pusher until space frees up. *)
  | Reject  (** Full channel: raise {!Full} immediately. *)

type 'a t

exception Closed
exception Full

val create : ?capacity:int -> ?policy:policy -> unit -> 'a t
(** [capacity] bounds the queue ([None] = unbounded; must be > 0);
    [policy] (default [Block]) selects the overflow behaviour. *)

val push : 'a t -> 'a -> unit
(** Enqueue; raises [Closed] after {!close} (including while blocked on
    a full channel), [Full] on a full [Reject]-policy channel. *)

val pop : 'a t -> 'a option
(** Block until an element is available; [None] once the channel is
    closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop. *)

val length : 'a t -> int
(** Current queue depth. *)

val high_water : 'a t -> int
(** Worst queue depth observed since creation. *)

val capacity : 'a t -> int option

val close : 'a t -> unit
(** Pending elements remain poppable, further pushes raise, blocked
    poppers and blocked pushers are woken. *)

(** Single-assignment synchronization cell (reply slot for API calls). *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** @raise Invalid_argument when already filled. *)

  val read : 'a t -> 'a
  (** Block until filled. *)

  val read_timeout : 'a t -> float -> 'a option
  (** [read_timeout t d] — the value, or [None] if none arrives within
      [d] seconds.  The slow path polls with exponential backoff (50µs
      doubling to 5ms), so the deadline verdict can lag expiry by at
      most one backoff step; a value arriving just after expiry may
      still be returned, never the reverse. *)
end

(** Countdown latch: event-dispatch completion barrier. *)
module Latch : sig
  type t

  val create : int -> t
  val count_down : t -> unit
  val wait : t -> unit
end
