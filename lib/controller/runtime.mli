(** The controller runtime, in the paper's architectures.

    - [Monolithic]: the baseline — handlers run inline, API calls are
      direct function calls (through the checker hook).
    - [Isolated]: SDNShield's thread-container architecture (§VI-A) —
      each app in its own unprivileged thread with a private event
      queue; every API call travels over a request channel to a pool of
      privileged Kernel Service Deputy (KSD) threads.
    - [Isolated_domains]: the KSD pool on separate domains (true
      parallelism on OCaml 5) — the paper's "multiple instances of KSDs
      can run in parallel" scalability claim.

    Reference-monitor duties at the dispatch boundary: event delivery
    is gated by [Receive_event] checks, packet-in payloads are stripped
    unless [Read_payload_access] passes, every denial lands in the
    sandbox audit log, and load-time access control (§VIII-B) can warn
    about or reject apps whose declared usage exceeds their grants. *)

type mode =
  | Monolithic
  | Isolated of { ksd_threads : int }
  | Isolated_domains of { ksd_domains : int }

val is_isolated : mode -> bool

(** Fault-tolerance knobs (docs/RUNTIME.md).  The defaults reproduce
    the original semantics — unbounded queues, no deadline — plus
    deputy supervision. *)
type config = {
  call_deadline : float option;
      (** Seconds an app thread waits for a KSD reply before giving up
          with [Api.Failed "deadline"]; [None] (default) waits
          forever. *)
  restart_budget : int;
      (** Times the supervisor restarts a crashed deputy before
          retiring it (default 8). *)
  ev_capacity : int option;
      (** Per-app event queue bound ([None] = unbounded). *)
  ev_policy : Channel.policy;
      (** Overflow policy for full event queues: [Block] applies
          backpressure to the dispatcher, [Reject] drops the delivery
          (counted; any completion latch is still released). *)
  req_capacity : int option;
      (** KSD request channel bound; always blocking on full, so a
          flooding app parks its own call loop. *)
  trace : Trace.t option;
      (** Span store for end-to-end call tracing
          (docs/OBSERVABILITY.md).  [None] (default) keeps the
          mediation path exactly as untraced; with a store, every
          sampled call records a {!Trace.span} — queue wait, check and
          kernel-execution durations, cache outcome, decision and its
          explanation — and feeds the [lat:*] histograms in
          {!Metrics}. *)
  health : Health.t option;
      (** Sliding-window health monitor (docs/OBSERVABILITY.md).
          [None] (default) records nothing; with a monitor, denials,
          mediation faults, deadline expiries and request-queue depth
          feed its window and {!telemetry} carries its verdict. *)
}

val default_config : config

(** How often the safety nets fired; see {!fault_report}. *)
type fault_report = {
  failures : int;
      (** Exceptions the deputy barrier converted to [Api.Failed]. *)
  restarts : int;  (** Supervisor restarts of crashed deputies. *)
  deadlines : int;  (** Calls abandoned at the deadline. *)
  rejections : int;
      (** Deliveries dropped by a full [Reject] queue, plus calls
          refused against a closed or full request channel. *)
}

type t = private {
  kernel : Kernel.t;
  kmutex : Mutex.t;
  mode : mode;
  config : config;
  mutable instances : instance list;
  reqs : request Channel.t;
  mutable ksd_pool : Thread.t list;
  mutable ksd_domains : unit Domain.t list;
  inflight_mutex : Mutex.t;
  inflight_zero : Condition.t;
  mutable inflight : int;
  counters : counters;
  faults : fault_counters;
  mutable rejected : (string * string) list;
      (** Apps refused at load time, with the reason. *)
}

and instance = private {
  app : App.t;
  checker : Api.checker;
  cookie : int;
  ev_chan : ev_item Channel.t;
  mutable thread : Thread.t option;
  mutable ctx : App.ctx option;
}

and ev_item = Deliver of Events.t * Channel.Latch.t option

and request =
  | Call of instance * Api.call * Api.result Channel.Ivar.t * float option
  | Txn of
      instance
      * Api.call list
      * (Api.result list, int * string) result Channel.Ivar.t
      * float option

and counters = private {
  mutable calls : int;
  mutable denials : int;
  mutable events_delivered : int;
  mutable events_suppressed : int;
  cmutex : Mutex.t;
}

and fault_counters = private {
  ksd_failures : int Atomic.t;
  ksd_restarts : int Atomic.t;
  deadline_expiries : int Atomic.t;
  backpressure_rejections : int Atomic.t;
}

type load_check = Skip_load_check | Warn_at_load | Reject_at_load

val load_violations : App.t -> Api.checker -> string list
(** Capabilities and event subscriptions whose backing tokens the
    checker does not grant at all. *)

val create :
  ?load_check:load_check -> ?config:config -> mode:mode -> Kernel.t ->
  (App.t * Api.checker) list -> t
(** Build a runtime hosting the apps, run load-time access control
    (default: skip), start the supervised KSD pool and app threads per
    [mode] with the fault-tolerance knobs in [config] (default
    {!default_config}), and run every surviving app's [init] through
    its mediated context.  Isolated runtimes register per-queue depth
    gauges in {!Metrics} (["queue:ksd-reqs"], ["queue:ev:<app>"]),
    unregistered again at {!shutdown}. *)

val shutdown : t -> unit
(** Stop app threads and the KSD pool (idempotent for [Monolithic]).
    Closing the event queues wakes pushers blocked on a full bounded
    queue; the request channel closes only after the app threads are
    joined, so no in-flight call loses its deputy. *)

val feed : t -> Events.t -> unit
(** Fire-and-forget event injection (throughput mode); cascaded events
    are dispatched opportunistically. *)

val feed_burst : t -> Events.t list -> unit
(** Inject a burst of events.  Delivery order, auditing, and
    suppression match [List.iter (feed t)], but each subscriber's
    pre-delivery permission checks ([Receive_event],
    [Read_payload_access]) are decided up front with one
    {!Api.checker.check_batch} call per subscriber when the checker
    offers one — the batched hot path for packet-in storms.
    Subscribers without a batch entry point are vetted per event,
    unchanged. *)

val feed_sync : t -> Events.t -> unit
(** Inject an event and block until every subscribed app has finished
    handling it, including cascaded events (latency mode). *)

val drain : t -> unit
(** Wait until all asynchronously dispatched work has completed. *)

val process_pending : t -> unit
(** Dispatch events the kernel queued as side effects of API calls. *)

val stats : t -> int * int * int * int
(** (calls, denials, events delivered, events suppressed). *)

val fault_report : t -> fault_report
(** Snapshot of the fault-tolerance counters: barrier conversions,
    deputy restarts, deadline expiries, backpressure rejections. *)

val pp_fault_report : Format.formatter -> fault_report -> unit

val cache_report : t -> (string * Metrics.cache_stats) list
(** Hit/miss counters of every cache registered in this process:
    per-engine decision caches and the normal-form / inclusion memo
    tables (see {!Metrics.register_cache}). *)

val telemetry : t -> Telemetry.snapshot
(** The runtime's slice of the unified telemetry snapshot: its
    reference-monitor and fault counters, the process-wide
    histogram/cache/gauge registries, and the configured trace store's
    accounting.  Render with {!Telemetry.to_json} /
    {!Telemetry.to_prometheus} / {!Telemetry.pp}. *)

val spans : t -> Trace.span list
(** Retained spans of the configured trace store, oldest first (empty
    without one). *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable observability report — {!Telemetry.pp} of
    {!telemetry}. *)

val sandbox : t -> Sandbox.t
val kernel : t -> Kernel.t

val instance_ctx : t -> string -> App.ctx
(** The mediated context of a hosted app, for external drivers.
    @raise Invalid_argument on unknown names. *)
