(* The app-market update queue (docs/CHURN.md).

   Lifecycle requests (install / upgrade / revoke) are serialized
   through a bounded channel into a single worker thread that runs each
   as one staged transaction via the pluggable executor.  The module is
   deliberately generic — requests are app names and manifest source
   text, outcomes are epoch numbers — so the controller library stays
   independent of the SDNShield core, exactly as [Runtime] is generic
   over [Api.checker].  The core-side half ([Sdnshield.Epoch]) supplies
   the executor and the epoch stores it publishes into.

   Serialization is the point, not a limitation: with one writer, the
   executor's prepare-then-swap publication needs no cross-transaction
   locking, and the rollback invariant ("the deployment is always on
   exactly the pre- or the post-transaction epoch") has a single
   writer to reason about. *)

type kind = Install | Upgrade | Revoke

let kind_to_string = function
  | Install -> "install"
  | Upgrade -> "upgrade"
  | Revoke -> "revoke"

type request = { kind : kind; app : string; manifest_src : string }

let install app manifest_src = { kind = Install; app; manifest_src }
let upgrade app manifest_src = { kind = Upgrade; app; manifest_src }
let revoke app = { kind = Revoke; app; manifest_src = "" }

type outcome =
  | Committed of {
      epoch : int;
      delta : bool;
      republished : string list;
      stages : (string * float) list;
    }
  | Rolled_back of { stage : string; reason : string; epoch : int }

let committed = function Committed _ -> true | Rolled_back _ -> false

type txn = { id : int; request : request; outcome : outcome }

type stats = { submitted : int; commits : int; rollbacks : int }

type item = Job of int * request * outcome Channel.Ivar.t

type t = {
  exec : request -> outcome;
  chan : item Channel.t;
  sandbox : Sandbox.t option;
  mutable worker : Thread.t option;
  mutex : Mutex.t;  (** Guards [ledger], [next_id] and [completed]. *)
  done_cond : Condition.t;
  mutable ledger : txn list;  (** Newest first. *)
  mutable next_id : int;
  mutable completed : int;
  commits : int Atomic.t;
  rollbacks : int Atomic.t;
  mutable shut : bool;
}

(* Gauge names are fixed: one market per process is the deployment
   shape (like the runtime's queue:ksd-reqs), and registration
   replaces, so sequential markets — the bench pattern — don't grow
   the registry. *)
let gauge_names = [ "queue:market"; "market:committed"; "market:rolled-back" ]

let register_gauges t =
  Metrics.register_gauge "queue:market" (fun () ->
      { Metrics.depth = Channel.length t.chan;
        hwm = Channel.high_water t.chan });
  let counter c () =
    let v = Atomic.get c in
    { Metrics.depth = v; hwm = v }
  in
  Metrics.register_gauge "market:committed" (counter t.commits);
  Metrics.register_gauge "market:rolled-back" (counter t.rollbacks)

let audit t (req : request) (outcome : outcome) =
  match t.sandbox with
  | None -> ()
  | Some sandbox -> (
    let subject = kind_to_string req.kind ^ " " ^ req.app in
    match outcome with
    | Committed { epoch; delta; republished; _ } ->
      Sandbox.record_audit sandbox ~app:req.app ~action:"market-commit"
        ~allowed:true
        ~detail:
          (Printf.sprintf "%s -> epoch %d%s%s" subject epoch
             (if delta then " (delta)" else "")
             (match republished with
             | [] -> ""
             | apps -> " republished " ^ String.concat "," apps))
    | Rolled_back { stage; reason; epoch } ->
      (* Fail-closed notification (docs/CHURN.md): the app was denied
         admission; forensics surfaces these via [fault_actions]. *)
      Sandbox.record_audit sandbox ~app:req.app ~action:"market-rollback"
        ~allowed:false
        ~detail:
          (Printf.sprintf "%s failed at %s (%s); still on epoch %d" subject
             stage reason epoch))

let complete t id req outcome ivar =
  (match outcome with
  | Committed _ -> Atomic.incr t.commits
  | Rolled_back _ -> Atomic.incr t.rollbacks);
  audit t req outcome;
  Mutex.lock t.mutex;
  t.ledger <- { id; request = req; outcome } :: t.ledger;
  t.completed <- t.completed + 1;
  Condition.broadcast t.done_cond;
  Mutex.unlock t.mutex;
  Channel.Ivar.fill ivar outcome

let worker t () =
  let rec loop () =
    match Channel.pop t.chan with
    | None -> ()
    | Some (Job (id, req, ivar)) ->
      let outcome =
        (* The worker's exception barrier: an executor that raises
           outside its own stage handling must not kill the market —
           the transaction reports as rolled back and the queue keeps
           serving.  (Staged failures never get here: the executor
           converts them to [Rolled_back] itself, with the real stage
           and the still-current epoch.) *)
        try t.exec req
        with exn ->
          Rolled_back
            { stage = "apply"; reason = Printexc.to_string exn; epoch = -1 }
      in
      complete t id req outcome ivar;
      loop ()
  in
  loop ()

let create ?capacity ?sandbox ~exec () : t =
  let t =
    { exec; chan = Channel.create ?capacity (); sandbox; worker = None;
      mutex = Mutex.create (); done_cond = Condition.create (); ledger = [];
      next_id = 0; completed = 0; commits = Atomic.make 0;
      rollbacks = Atomic.make 0; shut = false }
  in
  t.worker <- Some (Thread.create (worker t) ());
  register_gauges t;
  t

let refused = Rolled_back { stage = "queue"; reason = "market shut down"; epoch = -1 }

let submit_async t req =
  let ivar = Channel.Ivar.create () in
  Mutex.lock t.mutex;
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  Mutex.unlock t.mutex;
  (match Channel.push t.chan (Job (id, req, ivar)) with
  | () -> ()
  | exception Channel.Closed ->
    (* The id was allocated but the job refused: account it completed
       so [drain] still converges. *)
    complete t id req refused ivar);
  ivar

let submit t req = Channel.Ivar.read (submit_async t req)

let history t =
  Mutex.lock t.mutex;
  let l = List.rev t.ledger in
  Mutex.unlock t.mutex;
  l

let stats t =
  Mutex.lock t.mutex;
  let submitted = t.next_id in
  Mutex.unlock t.mutex;
  { submitted; commits = Atomic.get t.commits;
    rollbacks = Atomic.get t.rollbacks }

let drain t =
  Mutex.lock t.mutex;
  while t.completed < t.next_id do
    Condition.wait t.done_cond t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    drain t;
    Channel.close t.chan;
    (match t.worker with Some th -> Thread.join th | None -> ());
    t.worker <- None;
    List.iter Metrics.unregister_gauge gauge_names
  end

let pp_outcome ppf = function
  | Committed { epoch; delta; republished; stages } ->
    Fmt.pf ppf "committed epoch=%d%s%s (%a)" epoch
      (if delta then " delta" else "")
      (match republished with
      | [] -> ""
      | apps -> " republished=" ^ String.concat "," apps)
      Fmt.(list ~sep:(any " ") (fun ppf (s, d) -> pf ppf "%s:%.1fms" s (d *. 1e3)))
      stages
  | Rolled_back { stage; reason; epoch } ->
    Fmt.pf ppf "ROLLED BACK at %s (%s); epoch=%d" stage reason epoch

let pp_txn ppf { id; request = { kind; app; _ }; outcome } =
  Fmt.pf ppf "#%d %s %s: %a" id (kind_to_string kind) app pp_outcome outcome
