(* The app-market update queue (docs/CHURN.md).

   Lifecycle requests (install / upgrade / revoke) are serialized
   through a bounded channel into a single worker thread that runs each
   as one staged transaction via the pluggable executor.  The module is
   deliberately generic — requests are app names and manifest source
   text, outcomes are epoch numbers — so the controller library stays
   independent of the SDNShield core, exactly as [Runtime] is generic
   over [Api.checker].  The core-side half ([Sdnshield.Epoch]) supplies
   the executor and the epoch stores it publishes into.

   Serialization is the point, not a limitation: with one writer, the
   executor's prepare-then-swap publication needs no cross-transaction
   locking, and the rollback invariant ("the deployment is always on
   exactly the pre- or the post-transaction epoch") has a single
   writer to reason about. *)

type kind = Install | Upgrade | Revoke

let kind_to_string = function
  | Install -> "install"
  | Upgrade -> "upgrade"
  | Revoke -> "revoke"

type request = { kind : kind; app : string; manifest_src : string }

let install app manifest_src = { kind = Install; app; manifest_src }
let upgrade app manifest_src = { kind = Upgrade; app; manifest_src }
let revoke app = { kind = Revoke; app; manifest_src = "" }

type outcome =
  | Committed of {
      epoch : int;
      delta : bool;
      republished : string list;
      stages : (string * float) list;
    }
  | Rolled_back of {
      stage : string;
      reason : string;
      epoch : int;
      stages : (string * float) list;
    }

let committed = function Committed _ -> true | Rolled_back _ -> false

let stages_of = function
  | Committed { stages; _ } | Rolled_back { stages; _ } -> stages

type txn = { id : int; request : request; outcome : outcome }

type stats = { submitted : int; commits : int; rollbacks : int }

type item = Job of int * request * outcome Channel.Ivar.t

type t = {
  exec : request -> outcome;
  chan : item Channel.t;
  sandbox : Sandbox.t option;
  trace : Trace.t option;
      (** Transaction spans land here (docs/OBSERVABILITY.md), along
          with the [lat:stage:*] histograms. *)
  health : Health.t option;  (** Rollbacks and stage latencies feed it. *)
  flight : Forensics.Flight.t option;
      (** Commit boundaries and rollback captures. *)
  mutable worker : Thread.t option;
  mutex : Mutex.t;  (** Guards [ledger], [next_id] and [completed]. *)
  done_cond : Condition.t;
  mutable ledger : txn list;  (** Newest first. *)
  mutable next_id : int;
  mutable completed : int;
  commits : int Atomic.t;
  rollbacks : int Atomic.t;
  mutable shut : bool;
}

(* Gauge names are fixed: one market per process is the deployment
   shape (like the runtime's queue:ksd-reqs), and registration
   replaces, so sequential markets — the bench pattern — don't grow
   the registry. *)
let gauge_names = [ "queue:market"; "market:committed"; "market:rolled-back" ]

let register_gauges t =
  Metrics.register_gauge "queue:market" (fun () ->
      { Metrics.depth = Channel.length t.chan;
        hwm = Channel.high_water t.chan });
  let counter c () =
    let v = Atomic.get c in
    { Metrics.depth = v; hwm = v }
  in
  Metrics.register_gauge "market:committed" (counter t.commits);
  Metrics.register_gauge "market:rolled-back" (counter t.rollbacks)

let audit t (req : request) (outcome : outcome) =
  match t.sandbox with
  | None -> ()
  | Some sandbox -> (
    let subject = kind_to_string req.kind ^ " " ^ req.app in
    match outcome with
    | Committed { epoch; delta; republished; _ } ->
      Sandbox.record_audit sandbox ~app:req.app ~action:"market-commit"
        ~allowed:true
        ~detail:
          (Printf.sprintf "%s -> epoch %d%s%s" subject epoch
             (if delta then " (delta)" else "")
             (match republished with
             | [] -> ""
             | apps -> " republished " ^ String.concat "," apps))
    | Rolled_back { stage; reason; epoch; _ } ->
      (* Fail-closed notification (docs/CHURN.md): the app was denied
         admission; forensics surfaces these via [fault_actions]. *)
      Sandbox.record_audit sandbox ~app:req.app ~action:"market-rollback"
        ~allowed:false
        ~detail:
          (Printf.sprintf "%s failed at %s (%s); still on epoch %d" subject
             stage reason epoch))

(* One parent transaction span per completed request.  Stage offsets
   are synthesized cumulatively from the measured durations (the
   executor times each stage; inter-stage overhead folds into the
   parent), so children sum to at most the parent total. *)
let txn_span_of id (req : request) outcome ~start ~dur : Trace.txn_span =
  let verdict, epoch_before, epoch_after =
    match outcome with
    | Committed { epoch; delta; republished; _ } ->
      (* The epoch counter advances by exactly one per commit
         (docs/CHURN.md), so the pre-transaction epoch is derivable. *)
      (Trace.Txn_committed { delta; republished }, epoch - 1, epoch)
    | Rolled_back { stage; reason; epoch; _ } ->
      (Trace.Txn_rolled_back { stage; reason }, epoch, epoch)
  in
  let _, rev_stages =
    List.fold_left
      (fun (off, acc) (stage, d) ->
        (off +. d, { Trace.stage; offset = off; dur = d } :: acc))
      (0., []) (stages_of outcome)
  in
  { Trace.tseq = 0; id; kind = kind_to_string req.kind; txn_app = req.app;
    verdict; epoch_before; epoch_after; txn_start = start; txn_total = dur;
    stages = List.rev rev_stages }

let observe t id req outcome ~timing =
  let tspan =
    match timing with
    | None -> None
    | Some (start, dur) -> Some (txn_span_of id req outcome ~start ~dur)
  in
  (match (t.trace, tspan) with
  | Some tr, Some tspan ->
    Trace.record_txn tr tspan;
    List.iter
      (fun (stage, d) ->
        Metrics.Histogram.record (Metrics.hist ("lat:stage:" ^ stage)) d;
        match outcome with
        | Committed { delta; _ } when stage = "reconcile" ->
          Metrics.Histogram.record
            (Metrics.hist
               ("lat:stage:reconcile:" ^ if delta then "delta" else "full"))
            d
        | _ -> ())
      (stages_of outcome)
  | _ -> ());
  (match t.health with
  | Some h ->
    (match outcome with
    | Rolled_back _ -> Health.rollback h
    | Committed _ -> ());
    List.iter (fun (_, d) -> Health.stage_latency h d) (stages_of outcome)
  | None -> ());
  match t.flight with
  | None -> ()
  | Some fl -> (
    match outcome with
    | Committed { epoch; _ } -> Forensics.Flight.boundary fl ~epoch
    | Rolled_back { stage; reason; _ } ->
      ignore
        (Forensics.Flight.capture fl ?txn:tspan
           ~reason:
             (Printf.sprintf "txn %d (%s %s) rolled back at %s: %s" id
                (kind_to_string req.kind) req.app stage reason)
           ()))

let complete t id req outcome ivar ~timing =
  (match outcome with
  | Committed _ -> Atomic.incr t.commits
  | Rolled_back _ -> Atomic.incr t.rollbacks);
  audit t req outcome;
  observe t id req outcome ~timing;
  Mutex.lock t.mutex;
  t.ledger <- { id; request = req; outcome } :: t.ledger;
  t.completed <- t.completed + 1;
  Condition.broadcast t.done_cond;
  Mutex.unlock t.mutex;
  Channel.Ivar.fill ivar outcome

let worker t () =
  let rec loop () =
    match Channel.pop t.chan with
    | None -> ()
    | Some (Job (id, req, ivar)) ->
      let t0 = Metrics.now () in
      let outcome =
        (* The worker's exception barrier: an executor that raises
           outside its own stage handling must not kill the market —
           the transaction reports as rolled back and the queue keeps
           serving.  (Staged failures never get here: the executor
           converts them to [Rolled_back] itself, with the real stage
           and the still-current epoch.) *)
        try t.exec req
        with exn ->
          Rolled_back
            { stage = "apply"; reason = Printexc.to_string exn; epoch = -1;
              stages = [] }
      in
      let dur = Metrics.now () -. t0 in
      complete t id req outcome ivar ~timing:(Some (t0, dur));
      loop ()
  in
  loop ()

let create ?capacity ?sandbox ?trace ?health ?flight ~exec () : t =
  let t =
    { exec; chan = Channel.create ?capacity (); sandbox; trace; health;
      flight; worker = None; mutex = Mutex.create ();
      done_cond = Condition.create (); ledger = []; next_id = 0;
      completed = 0; commits = Atomic.make 0; rollbacks = Atomic.make 0;
      shut = false }
  in
  t.worker <- Some (Thread.create (worker t) ());
  register_gauges t;
  t

let refused =
  Rolled_back
    { stage = "queue"; reason = "market shut down"; epoch = -1; stages = [] }

let submit_async t req =
  let ivar = Channel.Ivar.create () in
  Mutex.lock t.mutex;
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  Mutex.unlock t.mutex;
  (match Channel.push t.chan (Job (id, req, ivar)) with
  | () -> ()
  | exception Channel.Closed ->
    (* The id was allocated but the job refused: account it completed
       so [drain] still converges. *)
    complete t id req refused ivar ~timing:None);
  ivar

let submit t req = Channel.Ivar.read (submit_async t req)

let history t =
  Mutex.lock t.mutex;
  let l = List.rev t.ledger in
  Mutex.unlock t.mutex;
  l

let stats t =
  Mutex.lock t.mutex;
  let submitted = t.next_id in
  Mutex.unlock t.mutex;
  { submitted; commits = Atomic.get t.commits;
    rollbacks = Atomic.get t.rollbacks }

let drain t =
  Mutex.lock t.mutex;
  while t.completed < t.next_id do
    Condition.wait t.done_cond t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    drain t;
    Channel.close t.chan;
    (match t.worker with Some th -> Thread.join th | None -> ());
    t.worker <- None;
    List.iter Metrics.unregister_gauge gauge_names
  end

let pp_outcome ppf = function
  | Committed { epoch; delta; republished; stages } ->
    Fmt.pf ppf "committed epoch=%d%s%s (%a)" epoch
      (if delta then " delta" else "")
      (match republished with
      | [] -> ""
      | apps -> " republished=" ^ String.concat "," apps)
      Fmt.(list ~sep:(any " ") (fun ppf (s, d) -> pf ppf "%s:%.1fms" s (d *. 1e3)))
      stages
  | Rolled_back { stage; reason; epoch; stages } ->
    Fmt.pf ppf "ROLLED BACK at %s (%s); epoch=%d%s" stage reason epoch
      (match stages with
      | [] -> ""
      | stages ->
        Fmt.str " (%a)"
          Fmt.(
            list ~sep:(any " ") (fun ppf (s, d) ->
                pf ppf "%s:%.1fms" s (d *. 1e3)))
          stages)

let pp_txn ppf { id; request = { kind; app; _ }; outcome } =
  Fmt.pf ppf "#%d %s %s: %a" id (kind_to_string kind) app pp_outcome outcome
