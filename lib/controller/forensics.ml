(* Forensic analysis over the reference monitor's activity logs.

   §VII (Scenario 2): even where permissions cannot block an action
   outright — a routing app must be able to insert rules — "SDNShield
   can provide activity logging, which enables forensic analysis after
   the attack happens."  The sandbox audit log and the kernel delivery
   log are that activity record; this module is the analysis layer:

   - per-app activity summaries (calls, denials, syscalls, deliveries);
   - suspicion heuristics keyed to the four attack classes of §II;
   - an incident report combining both. *)

open Shield_openflow

type app_summary = {
  app : string;
  actions : int;
  denials : int;
  runtime_faults : int;
      (** Mediation-path failures attributed to this app's calls: deputy
          barrier conversions ("ksd-exception"), crashed handlers and
          observer faults.  High counts mark an app whose inputs keep
          tripping the enforcement machinery — a distinct signal from
          denials. *)
  net_connections : int;
  distinct_net_destinations : string list;
  packets_delivered : int;
  rst_packets_delivered : int;
}

(** Audit actions the fault-tolerance layer records (docs/RUNTIME.md):
    per-request barrier conversions, app handler crashes, observer
    faults, and deputy lifecycle events (the latter logged under the
    pseudo-app ["<ksd>"]).  The live-update market (docs/CHURN.md)
    adds ["market-rollback"]: a lifecycle transaction that failed
    mid-swap and was rolled back to the prior epoch — the fail-closed
    denial notification the churn pipeline owes forensics. *)
let fault_actions =
  [ "ksd-exception"; "handler-exception"; "observer-exception";
    "deputy-crash"; "deputy-retired"; "market-rollback" ]

let is_fault_entry (e : Sandbox.audit_entry) =
  List.mem e.Sandbox.action fault_actions

(** Every fault-class entry in the activity record, oldest first —
    the raw material for a post-incident runtime-health review. *)
let fault_log (sandbox : Sandbox.t) : Sandbox.audit_entry list =
  List.filter is_fault_entry (Sandbox.audit_log sandbox)

type suspicion = {
  suspect : string;
  attack_class : int;  (** Threat-model class (§II), 1-4. *)
  evidence : string;
}

let summarize_app ~(sandbox : Sandbox.t) ~(kernel : Kernel.t) app : app_summary
    =
  let audit =
    List.filter (fun (e : Sandbox.audit_entry) -> e.Sandbox.app_name = app)
      (Sandbox.audit_log sandbox)
  in
  let conns = Sandbox.connections_by sandbox ~app in
  let deliveries =
    List.filter (fun (who, _) -> who = app) (Kernel.deliveries kernel)
  in
  { app;
    actions = List.length audit;
    denials = List.length (List.filter (fun (e : Sandbox.audit_entry) -> not e.Sandbox.allowed) audit);
    runtime_faults = List.length (List.filter is_fault_entry audit);
    net_connections = List.length conns;
    distinct_net_destinations =
      List.sort_uniq compare
        (List.map
           (fun (r : Sandbox.net_record) -> Types.ipv4_to_string r.Sandbox.dst)
           conns);
    packets_delivered = List.length deliveries;
    rst_packets_delivered =
      List.length
        (List.filter
           (fun (_, (d : Shield_net.Dataplane.delivery)) ->
             Packet.is_rst d.Shield_net.Dataplane.packet)
           deliveries) }

(** Heuristic indicators for the §II attack classes, evaluated over the
    activity record.  [allowed_destinations] is the administrator's
    collector allow-list for Class-2 analysis. *)
let suspicions ?(allowed_destinations = []) ~(sandbox : Sandbox.t)
    ~(kernel : Kernel.t) (apps : string list) : suspicion list =
  List.concat_map
    (fun app ->
      let s = summarize_app ~sandbox ~kernel app in
      let class1 =
        if s.rst_packets_delivered > 0 then
          [ { suspect = app; attack_class = 1;
              evidence =
                Printf.sprintf "%d TCP RST packet(s) injected into sessions"
                  s.rst_packets_delivered } ]
        else []
      in
      let class2 =
        let rogue =
          List.filter
            (fun dst -> not (List.mem dst allowed_destinations))
            s.distinct_net_destinations
        in
        if rogue <> [] then
          [ { suspect = app; attack_class = 2;
              evidence =
                "host-network connections to non-allowlisted destinations: "
                ^ String.concat ", " rogue } ]
        else []
      in
      let repeated_denials =
        (* Many denials = an app probing the boundary of its grants. *)
        if s.denials >= 3 then
          [ { suspect = app; attack_class = 3;
              evidence =
                Printf.sprintf
                  "%d denied actions (probing beyond granted permissions)"
                  s.denials } ]
        else []
      in
      class1 @ class2 @ repeated_denials)
    apps
  @
  (* Class 3/4 rule-level signatures come from the data-plane analyzer
     in Shield_apps.Defenses; here we surface cross-app shadowing from
     the audit trail: denied install_flow entries indicate attempted
     overrides when OWN_FLOWS gated them. *)
  List.filter_map
    (fun (e : Sandbox.audit_entry) ->
      if
        (not e.Sandbox.allowed)
        && String.length e.Sandbox.action >= 12
        && String.sub e.Sandbox.action 0 12 = "install_flow"
      then
        Some
          { suspect = e.Sandbox.app_name; attack_class = 4;
            evidence = "denied flow-mod: " ^ e.Sandbox.action }
      else None)
    (Sandbox.audit_log sandbox)

(* Incident reports ---------------------------------------------------------- *)

type incident_report = {
  summaries : app_summary list;
  suspicions : suspicion list;
  faults : Sandbox.audit_entry list;
  explained_denials : Trace.span list;
      (** Denied spans from the trace store, each carrying the
          decision explanation (which token / filter clause denied) —
          the "why" the audit log's flat denial entries lack. *)
}

(** The full §VII analysis product: per-app summaries, the suspicion
    heuristics, the runtime-fault log, and — when the runtime ran with
    a trace store — every denied call with its decision explanation. *)
let incident_report ?allowed_destinations ?trace ~(sandbox : Sandbox.t)
    ~(kernel : Kernel.t) (apps : string list) : incident_report =
  { summaries = List.map (summarize_app ~sandbox ~kernel) apps;
    suspicions = suspicions ?allowed_destinations ~sandbox ~kernel apps;
    faults = fault_log sandbox;
    explained_denials =
      (match trace with
      | None -> []
      | Some tr ->
        List.filter
          (fun (s : Trace.span) -> s.Trace.decision = Trace.Denied)
          (Trace.spans tr)) }

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<h>%s: actions=%d denials=%d faults=%d net=%d(%d dsts) delivered=%d \
     rst=%d@]"
    s.app s.actions s.denials s.runtime_faults s.net_connections
    (List.length s.distinct_net_destinations)
    s.packets_delivered s.rst_packets_delivered

let pp_suspicion ppf s =
  Fmt.pf ppf "@[<h>[class %d] %s: %s@]" s.attack_class s.suspect s.evidence

let pp_incident_report ppf (r : incident_report) =
  Fmt.pf ppf "activity summaries:@.";
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_summary s) r.summaries;
  (match r.suspicions with
  | [] -> Fmt.pf ppf "no suspicions raised@."
  | ss ->
    Fmt.pf ppf "suspicions:@.";
    List.iter (fun s -> Fmt.pf ppf "  %a@." pp_suspicion s) ss);
  (match r.faults with
  | [] -> ()
  | faults ->
    Fmt.pf ppf "runtime faults (%d):@." (List.length faults);
    List.iter
      (fun (e : Sandbox.audit_entry) ->
        Fmt.pf ppf "  %s: %s (%s)@." e.Sandbox.app_name e.Sandbox.action
          e.Sandbox.detail)
      faults);
  match r.explained_denials with
  | [] -> ()
  | denials ->
    Fmt.pf ppf "explained denials (%d):@." (List.length denials);
    List.iter (fun s -> Fmt.pf ppf "  %a@." Trace.pp_span s) denials
