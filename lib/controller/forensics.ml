(* Forensic analysis over the reference monitor's activity logs.

   §VII (Scenario 2): even where permissions cannot block an action
   outright — a routing app must be able to insert rules — "SDNShield
   can provide activity logging, which enables forensic analysis after
   the attack happens."  The sandbox audit log and the kernel delivery
   log are that activity record; this module is the analysis layer:

   - per-app activity summaries (calls, denials, syscalls, deliveries);
   - suspicion heuristics keyed to the four attack classes of §II;
   - an incident report combining both. *)

open Shield_openflow

type app_summary = {
  app : string;
  actions : int;
  denials : int;
  runtime_faults : int;
      (** Mediation-path failures attributed to this app's calls: deputy
          barrier conversions ("ksd-exception"), crashed handlers and
          observer faults.  High counts mark an app whose inputs keep
          tripping the enforcement machinery — a distinct signal from
          denials. *)
  net_connections : int;
  distinct_net_destinations : string list;
  packets_delivered : int;
  rst_packets_delivered : int;
}

(** Audit actions the fault-tolerance layer records (docs/RUNTIME.md):
    per-request barrier conversions, app handler crashes, observer
    faults, and deputy lifecycle events (the latter logged under the
    pseudo-app ["<ksd>"]).  The live-update market (docs/CHURN.md)
    adds ["market-rollback"]: a lifecycle transaction that failed
    mid-swap and was rolled back to the prior epoch — the fail-closed
    denial notification the churn pipeline owes forensics. *)
let fault_actions =
  [ "ksd-exception"; "handler-exception"; "observer-exception";
    "deputy-crash"; "deputy-retired"; "market-rollback" ]

let is_fault_entry (e : Sandbox.audit_entry) =
  List.mem e.Sandbox.action fault_actions

(** Every fault-class entry in the activity record, oldest first —
    the raw material for a post-incident runtime-health review. *)
let fault_log (sandbox : Sandbox.t) : Sandbox.audit_entry list =
  List.filter is_fault_entry (Sandbox.audit_log sandbox)

type suspicion = {
  suspect : string;
  attack_class : int;  (** Threat-model class (§II), 1-4. *)
  evidence : string;
}

let summarize_app ~(sandbox : Sandbox.t) ~(kernel : Kernel.t) app : app_summary
    =
  let audit =
    List.filter (fun (e : Sandbox.audit_entry) -> e.Sandbox.app_name = app)
      (Sandbox.audit_log sandbox)
  in
  let conns = Sandbox.connections_by sandbox ~app in
  let deliveries =
    List.filter (fun (who, _) -> who = app) (Kernel.deliveries kernel)
  in
  { app;
    actions = List.length audit;
    denials = List.length (List.filter (fun (e : Sandbox.audit_entry) -> not e.Sandbox.allowed) audit);
    runtime_faults = List.length (List.filter is_fault_entry audit);
    net_connections = List.length conns;
    distinct_net_destinations =
      List.sort_uniq compare
        (List.map
           (fun (r : Sandbox.net_record) -> Types.ipv4_to_string r.Sandbox.dst)
           conns);
    packets_delivered = List.length deliveries;
    rst_packets_delivered =
      List.length
        (List.filter
           (fun (_, (d : Shield_net.Dataplane.delivery)) ->
             Packet.is_rst d.Shield_net.Dataplane.packet)
           deliveries) }

(** Heuristic indicators for the §II attack classes, evaluated over the
    activity record.  [allowed_destinations] is the administrator's
    collector allow-list for Class-2 analysis. *)
let suspicions ?(allowed_destinations = []) ~(sandbox : Sandbox.t)
    ~(kernel : Kernel.t) (apps : string list) : suspicion list =
  List.concat_map
    (fun app ->
      let s = summarize_app ~sandbox ~kernel app in
      let class1 =
        if s.rst_packets_delivered > 0 then
          [ { suspect = app; attack_class = 1;
              evidence =
                Printf.sprintf "%d TCP RST packet(s) injected into sessions"
                  s.rst_packets_delivered } ]
        else []
      in
      let class2 =
        let rogue =
          List.filter
            (fun dst -> not (List.mem dst allowed_destinations))
            s.distinct_net_destinations
        in
        if rogue <> [] then
          [ { suspect = app; attack_class = 2;
              evidence =
                "host-network connections to non-allowlisted destinations: "
                ^ String.concat ", " rogue } ]
        else []
      in
      let repeated_denials =
        (* Many denials = an app probing the boundary of its grants. *)
        if s.denials >= 3 then
          [ { suspect = app; attack_class = 3;
              evidence =
                Printf.sprintf
                  "%d denied actions (probing beyond granted permissions)"
                  s.denials } ]
        else []
      in
      class1 @ class2 @ repeated_denials)
    apps
  @
  (* Class 3/4 rule-level signatures come from the data-plane analyzer
     in Shield_apps.Defenses; here we surface cross-app shadowing from
     the audit trail: denied install_flow entries indicate attempted
     overrides when OWN_FLOWS gated them. *)
  List.filter_map
    (fun (e : Sandbox.audit_entry) ->
      if
        (not e.Sandbox.allowed)
        && String.length e.Sandbox.action >= 12
        && String.sub e.Sandbox.action 0 12 = "install_flow"
      then
        Some
          { suspect = e.Sandbox.app_name; attack_class = 4;
            evidence = "denied flow-mod: " ^ e.Sandbox.action }
      else None)
    (Sandbox.audit_log sandbox)

(* Flight recorder ------------------------------------------------------------

   Post-mortems should not need a re-run: when a lifecycle transaction
   rolls back (or a fault site trips), capture everything the process
   knows about the incident *now*, into a bounded ring.  A bundle
   carries the transaction span (stage timings included), the last few
   call spans around the incident, and a diff of the telemetry
   snapshot against the last epoch boundary — what moved since the
   deployment was last known-good. *)

module Flight = struct
  type bundle = {
    bseq : int;  (** Monotone capture number. *)
    reason : string;
    txn : Trace.txn_span option;
        (** The failed transaction, with its stage spans. *)
    calls : Trace.span list;
        (** The most recent call spans at capture time (newest last). *)
    baseline_epoch : int;
        (** Epoch at the last {!boundary}; [-1] = never marked. *)
    diff : (string * float) list;
        (** Telemetry movement since the baseline: gauge depths, cache
            hit/miss counters and histogram sample counts that
            changed, as [(name, delta)]. *)
  }

  type t = {
    calls_around : int;
    trace : Trace.t option;
    ring : bundle option array;
    mutable recorded : int;
    mutable baseline : (int * Telemetry.snapshot) option;
    mutex : Mutex.t;
  }

  (** [create ()] — a recorder keeping the last [capacity] (default
      16) incident bundles; [calls_around] (default 8) bounds the call
      spans copied into each.  [trace], when given, supplies both the
      surrounding call spans and (via the caller) transaction spans. *)
  let create ?(capacity = 16) ?(calls_around = 8) ?trace () =
    if capacity <= 0 then
      invalid_arg "Flight.create: capacity must be > 0";
    { calls_around = Stdlib.max 0 calls_around;
      trace;
      ring = Array.make capacity None;
      recorded = 0;
      baseline = None;
      mutex = Mutex.create () }

  (** Mark an epoch boundary: the next captures diff against the
      telemetry snapshot taken here.  The market calls this after
      every commit, so a bundle's diff covers exactly the window since
      the last known-good epoch. *)
  let boundary t ~epoch =
    let snap = Telemetry.snapshot () in
    Mutex.lock t.mutex;
    t.baseline <- Some (epoch, snap);
    Mutex.unlock t.mutex

  (* What moved since the baseline snapshot: gauge depths, cache
     hits/misses, histogram counts.  Counter-style entries only — the
     point is a small, skimmable "what changed" list, not a second
     snapshot. *)
  let snapshot_diff (old_s : Telemetry.snapshot) (new_s : Telemetry.snapshot)
      =
    let delta out name now before =
      let d = now -. before in
      if d <> 0. then (name, d) :: out else out
    in
    let out = ref [] in
    List.iter
      (fun (k, (g : Metrics.gauge)) ->
        let before =
          match List.assoc_opt k old_s.Telemetry.gauges with
          | Some (o : Metrics.gauge) -> float_of_int o.Metrics.depth
          | None -> 0.
        in
        out := delta !out ("gauge:" ^ k) (float_of_int g.Metrics.depth) before)
      new_s.Telemetry.gauges;
    List.iter
      (fun (k, (c : Metrics.cache_stats)) ->
        let before =
          match List.assoc_opt k old_s.Telemetry.caches with
          | Some o -> o
          | None -> Metrics.zero_cache_stats
        in
        out :=
          delta !out ("cache:" ^ k ^ ":hits")
            (float_of_int c.Metrics.hits)
            (float_of_int before.Metrics.hits);
        out :=
          delta !out ("cache:" ^ k ^ ":misses")
            (float_of_int c.Metrics.misses)
            (float_of_int before.Metrics.misses))
      new_s.Telemetry.caches;
    List.iter
      (fun (k, (h : Metrics.Histogram.export)) ->
        let before =
          match List.assoc_opt k old_s.Telemetry.histograms with
          | Some (o : Metrics.Histogram.export) ->
            float_of_int o.Metrics.Histogram.n
          | None -> 0.
        in
        out :=
          delta !out ("hist:" ^ k ^ ":n")
            (float_of_int h.Metrics.Histogram.n)
            before)
      new_s.Telemetry.histograms;
    List.rev !out

  (** Capture an incident bundle now.  [txn], when given, is the
      rolled-back transaction's span. *)
  let capture t ?txn ~reason () =
    let now = Telemetry.snapshot () in
    let calls =
      match t.trace with
      | None -> []
      | Some tr ->
        let all = Trace.spans tr in
        let n = List.length all in
        if n <= t.calls_around then all
        else List.filteri (fun i _ -> i >= n - t.calls_around) all
    in
    Mutex.lock t.mutex;
    let baseline_epoch, diff =
      match t.baseline with
      | None -> (-1, [])
      | Some (epoch, snap) -> (epoch, snapshot_diff snap now)
    in
    let b =
      { bseq = t.recorded; reason; txn; calls; baseline_epoch; diff }
    in
    t.ring.(t.recorded mod Array.length t.ring) <- Some b;
    t.recorded <- t.recorded + 1;
    Mutex.unlock t.mutex;
    b

  (** Captured bundles, oldest first (bounded by the ring). *)
  let bundles t =
    Mutex.lock t.mutex;
    let cap = Array.length t.ring in
    let stored = Stdlib.min t.recorded cap in
    let first = t.recorded - stored in
    let out =
      List.init stored (fun i ->
          match t.ring.((first + i) mod cap) with
          | Some b -> b
          | None -> assert false)
    in
    Mutex.unlock t.mutex;
    out

  let captured t =
    Mutex.lock t.mutex;
    let n = t.recorded in
    Mutex.unlock t.mutex;
    n

  let pp_bundle ppf (b : bundle) =
    Fmt.pf ppf "@[<v>incident #%d: %s (baseline epoch %d)" b.bseq b.reason
      b.baseline_epoch;
    (match b.txn with
    | None -> ()
    | Some txn -> Fmt.pf ppf "@,  %a" Trace.pp_txn_span txn);
    List.iter (fun s -> Fmt.pf ppf "@,  call %a" Trace.pp_span s) b.calls;
    List.iter (fun (k, d) -> Fmt.pf ppf "@,  %+g %s" d k) b.diff;
    Fmt.pf ppf "@]"
end

(* Incident reports ---------------------------------------------------------- *)

type incident_report = {
  summaries : app_summary list;
  suspicions : suspicion list;
  faults : Sandbox.audit_entry list;
  explained_denials : Trace.span list;
      (** Denied spans from the trace store, each carrying the
          decision explanation (which token / filter clause denied) —
          the "why" the audit log's flat denial entries lack. *)
}

(** The full §VII analysis product: per-app summaries, the suspicion
    heuristics, the runtime-fault log, and — when the runtime ran with
    a trace store — every denied call with its decision explanation. *)
let incident_report ?allowed_destinations ?trace ~(sandbox : Sandbox.t)
    ~(kernel : Kernel.t) (apps : string list) : incident_report =
  { summaries = List.map (summarize_app ~sandbox ~kernel) apps;
    suspicions = suspicions ?allowed_destinations ~sandbox ~kernel apps;
    faults = fault_log sandbox;
    explained_denials =
      (match trace with
      | None -> []
      | Some tr ->
        List.filter
          (fun (s : Trace.span) -> s.Trace.decision = Trace.Denied)
          (Trace.spans tr)) }

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<h>%s: actions=%d denials=%d faults=%d net=%d(%d dsts) delivered=%d \
     rst=%d@]"
    s.app s.actions s.denials s.runtime_faults s.net_connections
    (List.length s.distinct_net_destinations)
    s.packets_delivered s.rst_packets_delivered

let pp_suspicion ppf s =
  Fmt.pf ppf "@[<h>[class %d] %s: %s@]" s.attack_class s.suspect s.evidence

let pp_incident_report ppf (r : incident_report) =
  Fmt.pf ppf "activity summaries:@.";
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_summary s) r.summaries;
  (match r.suspicions with
  | [] -> Fmt.pf ppf "no suspicions raised@."
  | ss ->
    Fmt.pf ppf "suspicions:@.";
    List.iter (fun s -> Fmt.pf ppf "  %a@." pp_suspicion s) ss);
  (match r.faults with
  | [] -> ()
  | faults ->
    Fmt.pf ppf "runtime faults (%d):@." (List.length faults);
    List.iter
      (fun (e : Sandbox.audit_entry) ->
        Fmt.pf ppf "  %s: %s (%s)@." e.Sandbox.app_name e.Sandbox.action
          e.Sandbox.detail)
      faults);
  match r.explained_denials with
  | [] -> ()
  | denials ->
    Fmt.pf ppf "explained denials (%d):@." (List.length denials);
    List.iter (fun s -> Fmt.pf ppf "  %a@." Trace.pp_span s) denials
