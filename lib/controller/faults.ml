(* Probabilistic fault injection for the isolated runtime.

   The paper's isolation claim (§VI) is that a misbehaving app — or a
   bug anywhere on the mediation path — must not take the runtime
   down.  Claims like that are only credible when exercised, so the
   runtime carries compiled-in fault points at the three places a
   failure historically wedged it:

   - [Checker]      raise inside a permission checker (via
                    {!wrap_checker});
   - [Kernel_exec]  raise inside [Kernel.exec], under the kernel lock;
   - [Deputy]       kill a Kernel Service Deputy between popping a
                    request and serving it, so the request is dropped
                    on the floor (the reply ivar is never filled and
                    the caller must be saved by its deadline).

   The live-update pipeline (docs/CHURN.md) adds three swap sites, one
   per stage a hot-swap transaction historically could die in:

   - [Swap_verify]   budget exhaustion (or a crash) mid-verify, while
                     certifying the reconciled result;
   - [Swap_compile]  kill mid-compile, while building the new epoch's
                     engine/automaton/cache;
   - [Swap_publish]  deputy death at publish time, between preparing
                     the new epoch records and swapping them in.

   A fault at any swap site must leave the deployment on the prior
   epoch (the rollback invariant the market-lab gate proves).

   Every point is guarded by one atomic [armed] flag: disarmed (the
   default, and the state every test/bench must restore), [point] is a
   single atomic load — negligible on the hot path.  The generator is
   a seeded counter hash, so a given configuration replays the same
   fault schedule: failures found by the harness are reproducible.

   This is process-global state (like the Metrics registries): arm it
   around a scenario, disarm in a [Fun.protect] finally.  The harness
   that drives it is `bench/main.exe faults` / `faults-smoke`. *)

type site =
  | Checker
  | Kernel_exec
  | Deputy
  | Swap_verify
  | Swap_compile
  | Swap_publish

let site_name = function
  | Checker -> "checker"
  | Kernel_exec -> "kernel-exec"
  | Deputy -> "deputy-kill"
  | Swap_verify -> "swap-verify"
  | Swap_compile -> "swap-compile"
  | Swap_publish -> "swap-publish"

exception Injected of string
(** The injected failure.  Deliberately not an exception the runtime
    knows about: fault handling must be generic over exceptions, not
    pattern-matched to the harness. *)

type config = {
  checker : float;  (** P(raise) per checker decision. *)
  kernel : float;  (** P(raise) per kernel execution. *)
  deputy : float;  (** P(kill) per request a deputy pops. *)
  swap_verify : float;  (** P(raise) per hot-swap verify stage. *)
  swap_compile : float;  (** P(raise) per hot-swap compile stage. *)
  swap_publish : float;  (** P(raise) per hot-swap publish step. *)
}

let armed = Atomic.make false

let config =
  Atomic.make
    { checker = 0.; kernel = 0.; deputy = 0.; swap_verify = 0.;
      swap_compile = 0.; swap_publish = 0. }

let seed_cell = Atomic.make 0
let sequence = Atomic.make 0

let counters = Array.init 6 (fun _ -> Atomic.make 0)

let counter_of = function
  | Checker -> counters.(0)
  | Kernel_exec -> counters.(1)
  | Deputy -> counters.(2)
  | Swap_verify -> counters.(3)
  | Swap_compile -> counters.(4)
  | Swap_publish -> counters.(5)

(* Counter hash (splitmix-style): uniform enough for Bernoulli draws,
   deterministic under a fixed seed, and safely concurrent — each draw
   consumes one ticket from the atomic sequence. *)
let mix x =
  let x = x * 0x9E3779B1 land max_int in
  let x = x lxor (x lsr 16) in
  let x = x * 0x85EBCA77 land max_int in
  x lxor (x lsr 13)

let next_float () =
  let n = Atomic.fetch_and_add sequence 1 in
  float_of_int (mix (n + Atomic.get seed_cell) land 0xFFFFFF) /. 16777216.

(** Arm the fault points.  Probabilities default to 0 (site inert);
    [seed] makes the schedule reproducible. *)
let configure ?(seed = 1) ?(checker = 0.) ?(kernel = 0.) ?(deputy = 0.)
    ?(swap_verify = 0.) ?(swap_compile = 0.) ?(swap_publish = 0.) () =
  Atomic.set config
    { checker; kernel; deputy; swap_verify; swap_compile; swap_publish };
  Atomic.set seed_cell (mix seed);
  Atomic.set sequence 0;
  Atomic.set armed true

let disarm () = Atomic.set armed false
let is_armed () = Atomic.get armed

let reset_counts () = Array.iter (fun c -> Atomic.set c 0) counters

(* An optional trip observer: health monitors and flight recorders
   subscribe to learn that a site fired, without the enforcement path
   knowing either exists.  Process-global like the rest of this
   module; observer exceptions are swallowed — telemetry must never
   change the fault schedule. *)
let observer : (site -> unit) option Atomic.t = Atomic.make None
let set_observer f = Atomic.set observer (Some f)
let clear_observer () = Atomic.set observer None

let injected site = Atomic.get (counter_of site)

let report () =
  List.map
    (fun s -> (site_name s, injected s))
    [ Checker; Kernel_exec; Deputy; Swap_verify; Swap_compile; Swap_publish ]

let pp_report ppf () =
  List.iter (fun (name, n) -> Fmt.pf ppf "faults injected: %-12s %d@." name n)
    (report ())

(** The fault point.  Disarmed: one atomic load.  Armed: a Bernoulli
    draw at the site's probability; on success the injection counter
    bumps and {!Injected} flies. *)
let point site =
  if Atomic.get armed then begin
    let c = Atomic.get config in
    let p =
      match site with
      | Checker -> c.checker
      | Kernel_exec -> c.kernel
      | Deputy -> c.deputy
      | Swap_verify -> c.swap_verify
      | Swap_compile -> c.swap_compile
      | Swap_publish -> c.swap_publish
    in
    if p > 0. && next_float () < p then begin
      Atomic.incr (counter_of site);
      (match Atomic.get observer with
      | Some f -> ( try f site with _ -> ())
      | None -> ());
      raise (Injected (site_name site))
    end
  end

(** Wrap a checker so its decision entry points pass through the
    [Checker] fault site — including the implicit [Receive_event] /
    [Read_payload_access] checks the runtime makes while vetting event
    delivery, which exercises the dispatcher-side barrier. *)
let rec wrap_checker (c : Api.checker) : Api.checker =
  { c with
    Api.check =
      (fun call ->
        point Checker;
        c.Api.check call);
    Api.check_batch =
      (* One fault point per batch: the burst is one decision entry
         into the checker, mirroring how the runtime uses it. *)
      Option.map
        (fun f calls ->
          point Checker;
          f calls)
        c.Api.check_batch;
    Api.check_transaction =
      (fun calls ->
        point Checker;
        c.Api.check_transaction calls);
    Api.explain =
      (* The explained path is a decision entry point too: traced
         runtimes must face the same fault schedule as untraced ones. *)
      Option.map
        (fun f call ->
          point Checker;
          f call)
        c.Api.explain;
    Api.snapshot =
      (* The resolved epoch-pinned checker is wrapped too, so hot-swap
         deployments face the same fault schedule as static ones.  The
         resolution itself stays fault-free: a raise there would look
         like a swap bug, not a checker fault. *)
      Option.map
        (fun f () -> wrap_checker { (f ()) with Api.snapshot = None })
        c.Api.snapshot }
