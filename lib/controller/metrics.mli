(** Latency/throughput measurement and the process-wide observability
    registries.

    Three layers, from exact to constant-memory:

    - {!t} records every sample (growable array behind a mutex) and
      {!summarize} computes exact percentiles — right for bounded
      benchmark runs (the paper's Figures 6–8 medians with 10/90
      error bars);
    - {!Histogram} is the bounded log-linear companion for long-running
      processes: constant memory, 6.25% relative resolution over
      1µs–10s, mergeable across domains;
    - the registries ({!register_cache}, {!register_gauge}, {!hist})
      are how producers all over the process surface cache counters,
      queue depths and latency histograms to {!Telemetry} without
      dependency cycles.

    All timing uses {!now}, a monotonic clock: wall-clock steps cannot
    produce negative spans. *)

val now : unit -> float
(** Monotonic time in seconds (CLOCK_MONOTONIC).  The epoch is
    arbitrary: only differences are meaningful, and they are
    non-negative for causally ordered reads.  Never compare against
    [Unix.gettimeofday]. *)

(** {1 Exact sample sets} *)

type t
(** A thread-safe growable set of float samples (seconds). *)

val create : unit -> t

val record : t -> float -> unit
(** O(1) amortised; safe from any thread or domain. *)

val count : t -> int

val samples : t -> float list
(** A consistent copy of the recorded samples, in {b recording order}
    (oldest first).  Historical note: the original list-backed
    implementation returned newest-first; recording order is now the
    contract. *)

val percentile_sorted : float -> float array -> float
(** [percentile_sorted p arr] with [arr] ascending and [p] in [0,100],
    by linear interpolation between the two closest ranks (NumPy
    "linear", NOT nearest-rank: p50 of [[|1.; 2.|]] is 1.5).

    NaN behaviour: the empty array yields [nan]; a single sample is
    returned for every [p]; if [arr] contains NaN the result is
    unspecified (sort order of NaN is total but meaningless — filter
    NaNs before calling). *)

val percentile : float -> float list -> float
(** List-based variant of {!percentile_sorted} for callers already
    holding a sorted list. *)

type summary = {
  n : int;
  median : float;
  p10 : float;
  p90 : float;
  mean : float;
  min : float;
  max : float;
}

val summarize : t -> summary
(** Exact summary of everything recorded so far.  With [n = 0] every
    float field is [nan] (check [n], not the floats: [nan <> nan]).
    Sorting uses [Float.compare] (monomorphic, total over NaN). *)

val summarize_list : float list -> summary

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, recording its duration on the monotonic clock. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Bounded log-linear histograms} *)

(** Constant-memory latency histograms (HDR-histogram style): each
    power-of-two octave of 1µs..2{^24}µs (≈16.8s, covering the 10s
    design ceiling) splits into 16 linear sub-buckets, so relative
    resolution is 1/16 of an octave everywhere.  Samples below/above
    the range land in dedicated underflow/overflow cells and are
    answered from the exact observed min/max.  Histograms merge by
    adding counts — associative and commutative, so per-domain
    histograms fold in any order. *)
module Histogram : sig
  type t

  val sub : int
  (** Sub-buckets per octave (16): the relative bucket width is
      [1/sub] of an octave. *)

  val buckets : int
  (** In-range cell count. *)

  val create : unit -> t

  val record : t -> float -> unit
  (** Record a duration in seconds.  Negative and non-finite values
      count as underflow. *)

  val count : t -> int

  val merge : t -> t -> t
  (** Fresh histogram holding both datasets. *)

  val percentile : t -> float -> float
  (** Nearest-rank estimate: the representative (bucket midpoint,
      clamped into the observed [min..max]) of the bucket holding the
      ⌈p/100·n⌉-th smallest sample — within one bucket width of the
      exact nearest-rank sample by construction.  [nan] when empty;
      [p] is clamped to [0,100]. *)

  val bucket_index : float -> int
  (** [-1] = underflow, {!buckets} = overflow, else the in-range cell.
      Exposed for the accuracy property tests. *)

  val bucket_bounds : int -> float * float
  (** Closed-open [(lo, hi)] bounds of an in-range cell, seconds. *)

  val bucket_mid : int -> float

  (** Exporter snapshot: totals plus non-empty cells ascending. *)
  type export = {
    n : int;
    sum : float;
    min : float;  (** [nan] when empty. *)
    max : float;  (** [nan] when empty. *)
    underflow : int;
    overflow : int;
    cells : (float * float * int) list;  (** (lo, hi, count). *)
  }

  val export : t -> export
  val pp : Format.formatter -> t -> unit
end

val hist : string -> Histogram.t
(** The histogram registered under [name], created empty on first use
    (so instrumentation sites need no setup order). *)

val unregister_hist : string -> unit

val hist_report : unit -> (string * Histogram.t) list
(** Every registered histogram, sorted by name. *)

val pp_hist_report : Format.formatter -> unit -> unit

(** {1 Cache-counter registry} *)

type cache_stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** Entries discarded for a stale generation. *)
  evictions : int;  (** Entries discarded for capacity. *)
  bypasses : int;  (** Lookups the cache refused to serve (uncacheable). *)
}

val zero_cache_stats : cache_stats

val hit_rate : cache_stats -> float
(** [hits / (hits + misses)].  [nan] when no lookup has happened —
    check [hits + misses > 0] before formatting. *)

val register_cache : string -> (unit -> cache_stats) -> unit
(** Register (or replace) the stats source for cache [name]. *)

val unregister_cache : string -> unit

val cache_report : unit -> (string * cache_stats) list
(** Snapshot every registered cache, sorted by name. *)

val pp_cache_stats : Format.formatter -> cache_stats -> unit
val pp_cache_report : Format.formatter -> unit -> unit

(** {1 Queue-depth gauge registry} *)

type gauge = {
  depth : int;  (** Current value (queue depth / counter reading). *)
  hwm : int;  (** High-water mark since creation. *)
}

val register_gauge : string -> (unit -> gauge) -> unit
val unregister_gauge : string -> unit

val gauge_report : unit -> (string * gauge) list
(** Snapshot every registered gauge, sorted by name. *)

val pp_gauge_report : Format.formatter -> unit -> unit
