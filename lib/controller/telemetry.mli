(** Unified telemetry export (docs/OBSERVABILITY.md).

    {!snapshot} gathers one consistent view of everything the process
    measures — the {!Metrics} histogram/cache/gauge registries, plus
    caller-supplied runtime counters and a {!Trace} store — and renders
    it as JSON ({!to_json}) or Prometheus text exposition format
    ({!to_prometheus}).  [Runtime.telemetry] is the usual entry point;
    this module itself never depends on the runtime. *)

type snapshot = {
  counters : (string * int) list;
      (** Caller-supplied monotone counters, in the caller's order. *)
  histograms : (string * Metrics.Histogram.export) list;
  caches : (string * Metrics.cache_stats) list;
  gauges : (string * Metrics.gauge) list;
  trace : Trace.stats option;
  health : Health.verdict option;
      (** The sliding-window monitor's judgment at snapshot time. *)
}

val snapshot :
  ?counters:(string * int) list ->
  ?trace:Trace.t ->
  ?health:Health.t ->
  unit ->
  snapshot
(** Read the {!Metrics} registries now.  Each entry is internally
    consistent; the snapshot as a whole is not a stop-the-world cut. *)

(** A minimal JSON value — writer and parser — so round-trips are
    testable without external dependencies.  Non-finite floats
    serialize as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** Parses what {!to_string} emits (and ordinary JSON: whitespace,
      escapes; [\u] escapes outside ASCII are kept verbatim). *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] otherwise. *)
end

val to_json_value : snapshot -> Json.t
val to_json : snapshot -> string

val to_prometheus : snapshot -> string
(** Text exposition format 0.0.4: runtime counters as
    [sdnshield_<name>_total], queue gauges as [sdnshield_queue_depth] /
    [_high_water], cache counters as [sdnshield_cache_*_total],
    histograms as cumulative [sdnshield_latency_seconds] bucket series
    (registry names in the [stage] label), trace accounting as
    [sdnshield_trace_spans] / [sdnshield_trace_txn_spans], and the
    health verdict as [sdnshield_health_status] (0/1/2),
    [sdnshield_health_window_seconds],
    [sdnshield_health_signal{signal=…}] and, for crossed rules,
    [sdnshield_health_cause_level{signal=…}]. *)

val validate_prometheus : string -> (unit, string) result
(** Shape-check exposition text: every non-comment line must be
    [name[{labels}] value] with a parseable value, and every sample
    must belong to a preceding [# TYPE] family — exactly for counters
    and gauges, via the [_bucket]/[_sum]/[_count] suffixes for
    histograms.  Counter families must end [_total], gauge families
    must not, and [sdnshield_health_status] must read 0, 1 or 2.
    Used by the obs-smoke and health-smoke gates; not a full scrape
    parser. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable report (what [Runtime.pp_report] prints). *)
