(* The controller runtime, in the paper's two architectures:

   - [Monolithic]: the baseline.  App handlers run inline in the
     dispatching thread and API calls execute as direct function calls
     (through the checker hook, identity for the unprotected baseline).

   - [Isolated]: SDNShield's thread-container architecture (§VI-A).
     Each app runs in its own unprivileged thread with a private event
     queue; every API call travels over a request channel to a pool of
     privileged Kernel Service Deputy (KSD) threads which consult the
     permission checker and execute the call on the app's behalf.

   Reference-monitor duties at the dispatch boundary:
   - event delivery is gated by a [Receive_event] permission check;
   - packet-in payloads are stripped unless [Read_payload_access] passes;
   - all denials are recorded in the sandbox audit log. *)

open Shield_openflow

type mode =
  | Monolithic
  | Isolated of { ksd_threads : int }
  | Isolated_domains of { ksd_domains : int }
      (** Like [Isolated], but the KSD pool runs on separate domains
          (true parallelism on OCaml 5): permission checking and kernel
          execution overlap with app-thread processing, reproducing the
          paper's "multiple instances of KSDs can run in parallel"
          scalability claim.  App threads remain systhreads (apps can
          outnumber cores). *)

let is_isolated = function
  | Monolithic -> false
  | Isolated _ | Isolated_domains _ -> true

type counters = {
  mutable calls : int;
  mutable denials : int;
  mutable events_delivered : int;
  mutable events_suppressed : int;
  cmutex : Mutex.t;
}

type instance = {
  app : App.t;
  checker : Api.checker;
  cookie : int;
  ev_chan : ev_item Channel.t;
  mutable thread : Thread.t option;
  mutable ctx : App.ctx option;
}

and ev_item = Deliver of Events.t * Channel.Latch.t option

type request =
  | Call of instance * Api.call * Api.result Channel.Ivar.t
  | Txn of
      instance
      * Api.call list
      * (Api.result list, int * string) result Channel.Ivar.t

type t = {
  kernel : Kernel.t;
  kmutex : Mutex.t;
  mode : mode;
  mutable instances : instance list;
  reqs : request Channel.t;
  mutable ksd_pool : Thread.t list;
  mutable ksd_domains : unit Domain.t list;
  inflight_mutex : Mutex.t;
  inflight_zero : Condition.t;
  mutable inflight : int;
  counters : counters;
  mutable rejected : (string * string) list;
      (** Apps refused at load time, with the reason. *)
}

let sandbox t = t.kernel.Kernel.sandbox
let kernel t = t.kernel

let incr_counter t f =
  Mutex.lock t.counters.cmutex;
  f t.counters;
  Mutex.unlock t.counters.cmutex

let stats t =
  Mutex.lock t.counters.cmutex;
  let r =
    ( t.counters.calls, t.counters.denials, t.counters.events_delivered,
      t.counters.events_suppressed )
  in
  Mutex.unlock t.counters.cmutex;
  r

(* In-flight accounting (for [drain]) ------------------------------------- *)

let inflight_incr t =
  Mutex.lock t.inflight_mutex;
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.inflight_mutex

let inflight_decr t =
  Mutex.lock t.inflight_mutex;
  t.inflight <- t.inflight - 1;
  if t.inflight = 0 then Condition.broadcast t.inflight_zero;
  Mutex.unlock t.inflight_mutex

let wait_inflight_zero t =
  Mutex.lock t.inflight_mutex;
  while t.inflight > 0 do
    Condition.wait t.inflight_zero t.inflight_mutex
  done;
  Mutex.unlock t.inflight_mutex

(* Permission-checked execution ------------------------------------------- *)

let audit_denial t inst call why =
  incr_counter t (fun c -> c.denials <- c.denials + 1);
  Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
    ~action:(Fmt.to_to_string Api.pp_call call)
    ~allowed:false ~detail:why

let locked_exec t inst call =
  Mutex.lock t.kmutex;
  let r =
    try Kernel.exec t.kernel ~app:inst.app.App.name ~cookie:inst.cookie call
    with exn ->
      Mutex.unlock t.kmutex;
      raise exn
  in
  Mutex.unlock t.kmutex;
  r

let checked_exec t inst call : Api.result =
  incr_counter t (fun c -> c.calls <- c.calls + 1);
  match inst.checker.Api.check call with
  | Api.Allow ->
    let concrete = inst.checker.Api.rewrite call in
    let results = List.map (locked_exec t inst) concrete in
    inst.checker.Api.vet_result call (inst.checker.Api.combine call results)
  | Api.Deny why ->
    audit_denial t inst call why;
    Api.Denied why

let checked_txn t inst calls =
  incr_counter t (fun c -> c.calls <- c.calls + List.length calls);
  match inst.checker.Api.check_transaction calls with
  | Ok () ->
    (* All checks passed: execute the whole group under one kernel
       lock so no other app observes a partial transaction. *)
    Mutex.lock t.kmutex;
    let results =
      List.map
        (fun call ->
          let concrete = inst.checker.Api.rewrite call in
          let rs =
            List.map
              (fun c ->
                Kernel.exec t.kernel ~app:inst.app.App.name ~cookie:inst.cookie
                  c)
              concrete
          in
          inst.checker.Api.vet_result call (inst.checker.Api.combine call rs))
        calls
    in
    Mutex.unlock t.kmutex;
    Ok results
  | Error (i, why) ->
    audit_denial t inst (List.nth calls i) why;
    Error (i, why)

(* Contexts ---------------------------------------------------------------- *)

let make_ctx t inst : App.ctx =
  match t.mode with
  | Monolithic ->
    { App.app_name = inst.app.App.name;
      call = (fun call -> checked_exec t inst call);
      transaction = (fun calls -> checked_txn t inst calls) }
  | Isolated _ | Isolated_domains _ ->
    { App.app_name = inst.app.App.name;
      call =
        (fun call ->
          let ivar = Channel.Ivar.create () in
          Channel.push t.reqs (Call (inst, call, ivar));
          Channel.Ivar.read ivar);
      transaction =
        (fun calls ->
          let ivar = Channel.Ivar.create () in
          Channel.push t.reqs (Txn (inst, calls, ivar));
          Channel.Ivar.read ivar) }

let ctx_of inst =
  match inst.ctx with
  | Some c -> c
  | None -> invalid_arg "runtime: instance not started"

(* Event dispatch ---------------------------------------------------------- *)

(** Apply the reference-monitor checks that precede event delivery.
    Returns [None] when delivery is suppressed, or the (possibly
    payload-stripped) event to deliver. *)
let vet_event t inst ev : Events.t option =
  let kind = Events.kind ev in
  match inst.checker.Api.check (Api.Receive_event kind) with
  | Api.Deny why ->
    incr_counter t (fun c -> c.events_suppressed <- c.events_suppressed + 1);
    audit_denial t inst (Api.Receive_event kind) why;
    None
  | Api.Allow -> (
    match ev with
    | Events.Packet_in pi -> (
      match inst.checker.Api.check Api.Read_payload_access with
      | Api.Allow -> Some ev
      | Api.Deny _ ->
        (* pkt_in_event without read_payload: deliver headers only. *)
        Some
          (Events.Packet_in
             { pi with packet = { pi.packet with Packet.payload = "" } }))
    | _ -> Some ev)

let handle_in_instance t inst ev =
  incr_counter t (fun c -> c.events_delivered <- c.events_delivered + 1);
  try inst.app.App.handle (ctx_of inst) ev
  with exn ->
    (* A crashing app must not take the runtime down: the isolation
       property.  Record it as an error-class audit entry. *)
    Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
      ~action:"handler-exception" ~allowed:true
      ~detail:(Printexc.to_string exn)

let dispatch_one t inst ev latch =
  match vet_event t inst ev with
  | None -> (match latch with Some l -> Channel.Latch.count_down l | None -> ())
  | Some ev -> (
    match t.mode with
    | Monolithic ->
      handle_in_instance t inst ev;
      (match latch with Some l -> Channel.Latch.count_down l | None -> ())
    | Isolated _ | Isolated_domains _ ->
      inflight_incr t;
      Channel.push inst.ev_chan (Deliver (ev, latch)))

let subscribers t ev =
  let kind = Events.kind ev in
  List.filter (fun inst -> App.subscribes inst.app kind) t.instances

(** Tell every checker about state changes it must track (e.g. flow
    expirations feeding ownership stores). *)
let notify_observers t ev =
  match ev with
  | Events.Flow_removed { dpid; match_; cookie } ->
    List.iter
      (fun inst ->
        inst.checker.Api.observe (Api.Flow_expired { dpid; match_; cookie }))
      t.instances
  | _ -> ()

(** Dispatch all events the kernel queued as side effects of API calls,
    cascading until quiescent. *)
let rec process_pending t =
  Mutex.lock t.kmutex;
  let evs = Kernel.take_pending t.kernel in
  Mutex.unlock t.kmutex;
  match evs with
  | [] -> ()
  | evs ->
    List.iter
      (fun ev ->
        notify_observers t ev;
        List.iter (fun inst -> dispatch_one t inst ev None) (subscribers t ev))
      evs;
    (* In monolithic mode handlers ran inline and may have queued more. *)
    if t.mode = Monolithic then process_pending t

(** Fire-and-forget event injection (throughput mode). *)
let feed t ev =
  notify_observers t ev;
  List.iter (fun inst -> dispatch_one t inst ev None) (subscribers t ev);
  process_pending t

(** Inject [ev] and block until every subscribed app has finished
    handling it, including cascaded events (latency mode). *)
let rec feed_sync t ev =
  notify_observers t ev;
  let subs = subscribers t ev in
  (match subs with
  | [] -> ()
  | _ ->
    let latch = Channel.Latch.create (List.length subs) in
    List.iter (fun inst -> dispatch_one t inst ev (Some latch)) subs;
    Channel.Latch.wait latch);
  process_pending_sync t

and process_pending_sync t =
  Mutex.lock t.kmutex;
  let evs = Kernel.take_pending t.kernel in
  Mutex.unlock t.kmutex;
  List.iter (feed_sync t) evs

(** Wait until all asynchronously dispatched work has completed,
    including cascades. *)
let rec drain t =
  wait_inflight_zero t;
  Mutex.lock t.kmutex;
  let quiescent = t.kernel.Kernel.pending = [] in
  Mutex.unlock t.kmutex;
  if not quiescent then begin
    process_pending t;
    drain t
  end

(* Threads ----------------------------------------------------------------- *)

let app_thread t inst () =
  let rec loop () =
    match Channel.pop inst.ev_chan with
    | None -> ()
    | Some (Deliver (ev, latch)) ->
      handle_in_instance t inst ev;
      (match latch with Some l -> Channel.Latch.count_down l | None -> ());
      inflight_decr t;
      loop ()
  in
  loop ()

let ksd_thread t () =
  let rec loop () =
    match Channel.pop t.reqs with
    | None -> ()
    | Some (Call (inst, call, ivar)) ->
      Channel.Ivar.fill ivar (checked_exec t inst call);
      loop ()
    | Some (Txn (inst, calls, ivar)) ->
      Channel.Ivar.fill ivar (checked_txn t inst calls);
      loop ()
  in
  loop ()

(* Lifecycle --------------------------------------------------------------- *)

type load_check = Skip_load_check | Warn_at_load | Reject_at_load

(** Load-time access control (§VIII-B): tokens backing the app's
    declared capabilities and event subscriptions must be granted at
    all, or the app is flagged (or refused) before it ever runs —
    "no runtime permission checking is needed in case the app does not
    have the required permission tokens at all". *)
let load_violations (app : App.t) (checker : Api.checker) : string list =
  let missing_caps =
    List.filter_map
      (fun cap ->
        if checker.Api.granted cap then None
        else Some ("capability " ^ Api.capability_to_string cap))
      app.App.uses
  in
  let missing_events =
    List.filter_map
      (fun kind ->
        match kind with
        | Api.E_app _ -> None (* inter-app channels need no token *)
        | _ -> (
          match checker.Api.check (Api.Receive_event kind) with
          | Api.Deny _ ->
            Some ("event subscription " ^ Api.event_kind_to_string kind)
          | Api.Allow -> None))
      app.App.subscriptions
  in
  missing_caps @ missing_events

(** [create ~mode kernel apps] builds a runtime over [kernel] hosting
    [apps], each paired with its permission checker, then runs every
    app's [init] through its own context.  [load_check] selects the
    load-time access-control behaviour (default: skip). *)
let create ?(load_check = Skip_load_check) ~mode kernel
    (apps : (App.t * Api.checker) list) : t =
  let counters =
    { calls = 0; denials = 0; events_delivered = 0; events_suppressed = 0;
      cmutex = Mutex.create () }
  in
  let t =
    { kernel; kmutex = Mutex.create (); mode; instances = [];
      reqs = Channel.create (); ksd_pool = []; ksd_domains = [];
      inflight_mutex = Mutex.create ();
      inflight_zero = Condition.create (); inflight = 0; counters;
      rejected = [] }
  in
  let apps =
    match load_check with
    | Skip_load_check -> apps
    | Warn_at_load | Reject_at_load ->
      List.filter
        (fun ((app : App.t), checker) ->
          match load_violations app checker with
          | [] -> true
          | violations ->
            let reason = String.concat ", " violations in
            Sandbox.record_audit kernel.Kernel.sandbox ~app:app.App.name
              ~action:"load-time-check" ~allowed:(load_check = Warn_at_load)
              ~detail:reason;
            if load_check = Reject_at_load then begin
              t.rejected <- (app.App.name, reason) :: t.rejected;
              false
            end
            else true)
        apps
  in
  let instances =
    List.mapi
      (fun i (app, checker) ->
        { app; checker; cookie = i + 1; ev_chan = Channel.create ();
          thread = None; ctx = None })
      apps
  in
  t.instances <- instances;
  List.iter (fun inst -> inst.ctx <- Some (make_ctx t inst)) instances;
  (match mode with
  | Monolithic -> ()
  | Isolated { ksd_threads } ->
    t.ksd_pool <-
      List.init (max 1 ksd_threads) (fun _ -> Thread.create (ksd_thread t) ());
    List.iter
      (fun inst -> inst.thread <- Some (Thread.create (app_thread t inst) ()))
      instances
  | Isolated_domains { ksd_domains } ->
    t.ksd_domains <-
      List.init (max 1 ksd_domains) (fun _ -> Domain.spawn (ksd_thread t));
    List.iter
      (fun inst -> inst.thread <- Some (Thread.create (app_thread t inst) ()))
      instances);
  (* App initialisation goes through the same mediated contexts. *)
  List.iter (fun inst -> inst.app.App.init (ctx_of inst)) instances;
  process_pending t;
  t

let shutdown t =
  (match t.mode with
  | Monolithic -> ()
  | Isolated _ | Isolated_domains _ ->
    List.iter (fun inst -> Channel.close inst.ev_chan) t.instances;
    List.iter
      (fun inst -> match inst.thread with Some th -> Thread.join th | None -> ())
      t.instances;
    Channel.close t.reqs;
    List.iter Thread.join t.ksd_pool;
    List.iter Domain.join t.ksd_domains)

(** The runtime's observability report: reference-monitor counters,
    kernel execution volume, and every registered cache's hit/miss
    counters (engines register their decision caches, [lib/core]
    registers the normal-form and inclusion memos). *)
let cache_report (_ : t) = Metrics.cache_report ()

let pp_report ppf t =
  let calls, denials, delivered, suppressed = stats t in
  Fmt.pf ppf "calls=%d denials=%d events: delivered=%d suppressed=%d@." calls
    denials delivered suppressed;
  Fmt.pf ppf "kernel executions=%d@." (Kernel.exec_count t.kernel);
  Metrics.pp_cache_report ppf ()

let instance_ctx t name =
  match List.find_opt (fun i -> i.app.App.name = name) t.instances with
  | Some inst -> ctx_of inst
  | None -> invalid_arg (Printf.sprintf "runtime: no app %S" name)
