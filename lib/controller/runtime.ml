(* The controller runtime, in the paper's two architectures:

   - [Monolithic]: the baseline.  App handlers run inline in the
     dispatching thread and API calls execute as direct function calls
     (through the checker hook, identity for the unprotected baseline).

   - [Isolated]: SDNShield's thread-container architecture (§VI-A).
     Each app runs in its own unprivileged thread with a private event
     queue; every API call travels over a request channel to a pool of
     privileged Kernel Service Deputy (KSD) threads which consult the
     permission checker and execute the call on the app's behalf.

   Reference-monitor duties at the dispatch boundary:
   - event delivery is gated by a [Receive_event] permission check;
   - packet-in payloads are stripped unless [Read_payload_access] passes;
   - all denials are recorded in the sandbox audit log. *)

open Shield_openflow

type mode =
  | Monolithic
  | Isolated of { ksd_threads : int }
  | Isolated_domains of { ksd_domains : int }
      (** Like [Isolated], but the KSD pool runs on separate domains
          (true parallelism on OCaml 5): permission checking and kernel
          execution overlap with app-thread processing, reproducing the
          paper's "multiple instances of KSDs can run in parallel"
          scalability claim.  App threads remain systhreads (apps can
          outnumber cores). *)

let is_isolated = function
  | Monolithic -> false
  | Isolated _ | Isolated_domains _ -> true

(* Failure model (docs/RUNTIME.md): every request gets a reply, no lock
   survives an exception, and a fault in one app's call path never
   wedges another app.  [config] sets the three knobs: deputy restart
   budget, per-call deadline, and queue bounds/overflow policy. *)

type config = {
  call_deadline : float option;
      (** Seconds an app thread waits for a KSD reply before giving up
          with [Api.Failed "deadline"].  [None] (default) waits
          forever — sound because the deputy exception barrier always
          fills the reply ivar; a deadline adds defence against deputy
          death between popping a request and serving it. *)
  restart_budget : int;
      (** Times the supervisor restarts a crashed deputy before
          retiring it.  The exception barrier makes deputy crashes
          exceptional (a raise inside a checker or the kernel becomes
          an [Api.Failed] reply), so the budget only meets faults that
          escape the per-request barrier. *)
  ev_capacity : int option;
      (** Per-app event queue bound ([None] = unbounded). *)
  ev_policy : Channel.policy;
      (** Overflow policy for full event queues: [Block] applies
          backpressure to the dispatcher, [Reject] drops the delivery
          (counted, latch still released). *)
  req_capacity : int option;
      (** KSD request channel bound.  Always [Block]: an API call has
          exactly-once semantics, so a full request queue parks the
          calling app thread (saturating its own call loop) rather
          than dropping the call. *)
  trace : Trace.t option;
      (** Span store for end-to-end call tracing.  [None] (default)
          keeps the mediation path exactly as untraced; with a store,
          every sampled call records a {!Trace.span} and feeds the
          [lat:*] histograms in {!Metrics}. *)
  health : Health.t option;
      (** Sliding-window health monitor.  [None] (default) records
          nothing; with a monitor, denials, mediation faults, deadline
          expiries and request-queue depth feed its window and
          [telemetry] carries its verdict. *)
}

let default_config =
  { call_deadline = None; restart_budget = 8; ev_capacity = None;
    ev_policy = Channel.Block; req_capacity = None; trace = None;
    health = None }

(* Fault-tolerance observability: how often the safety nets fired. *)
type fault_counters = {
  ksd_failures : int Atomic.t;
      (** Exceptions the deputy barrier converted to [Api.Failed]. *)
  ksd_restarts : int Atomic.t;  (** Supervisor restarts of dead deputies. *)
  deadline_expiries : int Atomic.t;  (** Calls abandoned at the deadline. *)
  backpressure_rejections : int Atomic.t;
      (** Deliveries dropped by a full [Reject] queue, plus calls
          refused against a closed/rejecting request channel. *)
}

type fault_report = {
  failures : int;
  restarts : int;
  deadlines : int;
  rejections : int;
}

type counters = {
  mutable calls : int;
  mutable denials : int;
  mutable events_delivered : int;
  mutable events_suppressed : int;
  cmutex : Mutex.t;
}

type instance = {
  app : App.t;
  checker : Api.checker;
  cookie : int;
  ev_chan : ev_item Channel.t;
  mutable thread : Thread.t option;
  mutable ctx : App.ctx option;
}

and ev_item = Deliver of Events.t * Channel.Latch.t option

(* The [float option] is the monotonic enqueue timestamp of a call the
   trace sampler selected ([None] = untraced): the deputy that pops the
   request turns it into the span's queue-wait stage. *)
type request =
  | Call of instance * Api.call * Api.result Channel.Ivar.t * float option
  | Txn of
      instance
      * Api.call list
      * (Api.result list, int * string) result Channel.Ivar.t
      * float option

type t = {
  kernel : Kernel.t;
  kmutex : Mutex.t;
  mode : mode;
  config : config;
  mutable instances : instance list;
  reqs : request Channel.t;
  mutable ksd_pool : Thread.t list;
  mutable ksd_domains : unit Domain.t list;
  inflight_mutex : Mutex.t;
  inflight_zero : Condition.t;
  mutable inflight : int;
  counters : counters;
  faults : fault_counters;
  mutable rejected : (string * string) list;
      (** Apps refused at load time, with the reason. *)
}

let sandbox t = t.kernel.Kernel.sandbox
let kernel t = t.kernel

let incr_counter t f =
  Mutex.lock t.counters.cmutex;
  f t.counters;
  Mutex.unlock t.counters.cmutex

let stats t =
  Mutex.lock t.counters.cmutex;
  let r =
    ( t.counters.calls, t.counters.denials, t.counters.events_delivered,
      t.counters.events_suppressed )
  in
  Mutex.unlock t.counters.cmutex;
  r

let fault_report t =
  { failures = Atomic.get t.faults.ksd_failures;
    restarts = Atomic.get t.faults.ksd_restarts;
    deadlines = Atomic.get t.faults.deadline_expiries;
    rejections = Atomic.get t.faults.backpressure_rejections }

(* In-flight accounting (for [drain]) ------------------------------------- *)

let inflight_incr t =
  Mutex.lock t.inflight_mutex;
  t.inflight <- t.inflight + 1;
  Mutex.unlock t.inflight_mutex

let inflight_decr t =
  Mutex.lock t.inflight_mutex;
  t.inflight <- t.inflight - 1;
  if t.inflight = 0 then Condition.broadcast t.inflight_zero;
  Mutex.unlock t.inflight_mutex

let wait_inflight_zero t =
  Mutex.lock t.inflight_mutex;
  while t.inflight > 0 do
    Condition.wait t.inflight_zero t.inflight_mutex
  done;
  Mutex.unlock t.inflight_mutex

(* Permission-checked execution ------------------------------------------- *)

let audit_denial t inst call why =
  incr_counter t (fun c -> c.denials <- c.denials + 1);
  (match t.config.health with
  | Some h -> Health.denial h
  | None -> ());
  Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
    ~action:(Fmt.to_to_string Api.pp_call call)
    ~allowed:false ~detail:why

(* "No lock survives an exception": both kernel-lock scopes release via
   [Fun.protect], so a raising [Kernel.exec] cannot wedge every
   subsequent call, [process_pending] and [drain] behind a held
   [kmutex]. *)

let locked_exec t inst call =
  Mutex.lock t.kmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.kmutex)
    (fun () ->
      Kernel.exec t.kernel ~app:inst.app.App.name ~cookie:inst.cookie call)

(* Epoch pinning (docs/CHURN.md): a checker that publishes [snapshot]
   is resolved once per mediated call, and all phases of that call —
   check, rewrite, combine, vet_result — go through the resolved
   (immutable) checker.  A hot-swap landing mid-call therefore cannot
   mix two manifests within one decision; checkers without [snapshot]
   are used directly, and this is one branch on the hot path. *)
let resolve (c : Api.checker) : Api.checker =
  match c.Api.snapshot with Some f -> f () | None -> c

let checked_exec t inst call : Api.result =
  incr_counter t (fun c -> c.calls <- c.calls + 1);
  let ck = resolve inst.checker in
  match ck.Api.check call with
  | Api.Allow ->
    let concrete = ck.Api.rewrite call in
    let results = List.map (locked_exec t inst) concrete in
    ck.Api.vet_result call (ck.Api.combine call results)
  | Api.Deny why ->
    audit_denial t inst call why;
    Api.Denied why

let checked_txn t inst calls =
  incr_counter t (fun c -> c.calls <- c.calls + List.length calls);
  let ck = resolve inst.checker in
  match ck.Api.check_transaction calls with
  | Ok () ->
    (* All checks passed: execute the whole group under one kernel
       lock so no other app observes a partial transaction. *)
    Mutex.lock t.kmutex;
    let results =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.kmutex)
        (fun () ->
          List.map
            (fun call ->
              let concrete = ck.Api.rewrite call in
              let rs =
                List.map
                  (fun c ->
                    Kernel.exec t.kernel ~app:inst.app.App.name
                      ~cookie:inst.cookie c)
                  concrete
              in
              ck.Api.vet_result call (ck.Api.combine call rs))
            calls)
    in
    Ok results
  | Error (i, why) ->
    audit_denial t inst (List.nth calls i) why;
    Error (i, why)

(* Traced execution ---------------------------------------------------------

   The traced twin of [checked_exec]: same counters, same audit, same
   result — plus per-stage timing on the monotonic clock, the checker's
   decision provenance (via its [explain] entry point when it has one),
   a span in the store, and samples into the [lat:*] histograms.  Kept
   separate so the untraced hot path pays nothing. *)

let span_histograms inst ~queue_wait ~check_dur ~exec_dur =
  Metrics.Histogram.record (Metrics.hist "lat:queue") queue_wait;
  Metrics.Histogram.record (Metrics.hist "lat:check") check_dur;
  Metrics.Histogram.record (Metrics.hist "lat:exec") exec_dur;
  let total = queue_wait +. check_dur +. exec_dur in
  Metrics.Histogram.record (Metrics.hist "lat:total") total;
  Metrics.Histogram.record
    (Metrics.hist ("lat:app:" ^ inst.app.App.name))
    total

let record_span tr inst ~call ~deputy ~start ~queue_wait ~check_dur
    ~exec_dur ~decision ~cache ~explain =
  span_histograms inst ~queue_wait ~check_dur ~exec_dur;
  Trace.span tr ~app:inst.app.App.name ~call ~deputy ~start ~queue_wait
    ~check_dur ~exec_dur ~decision ~cache ~explain

let checked_exec_traced t inst call tr ~deputy ~queue_wait : Api.result =
  incr_counter t (fun c -> c.calls <- c.calls + 1);
  let ck = resolve inst.checker in
  let call_str = Api.call_kind call in
  let t0 = Metrics.now () in
  let start = t0 -. queue_wait in
  let decision, info =
    match ck.Api.explain with
    | Some explain -> explain call
    | None -> (ck.Api.check call, Api.no_check_info)
  in
  let check_dur = Metrics.now () -. t0 in
  match decision with
  | Api.Deny why ->
    audit_denial t inst call why;
    record_span tr inst ~call:call_str ~deputy ~start ~queue_wait ~check_dur
      ~exec_dur:0. ~decision:Trace.Denied ~cache:info.Api.cache
      ~explain:info.Api.explain;
    Api.Denied why
  | Api.Allow -> (
    let t1 = Metrics.now () in
    match
      let concrete = ck.Api.rewrite call in
      let results = List.map (locked_exec t inst) concrete in
      ck.Api.vet_result call (ck.Api.combine call results)
    with
    | result ->
      let exec_dur = Metrics.now () -. t1 in
      let cls =
        match result with
        | Api.Denied _ -> Trace.Denied
        | Api.Failed _ -> Trace.Failed
        | _ -> Trace.Allowed
      in
      record_span tr inst ~call:call_str ~deputy ~start ~queue_wait
        ~check_dur ~exec_dur ~decision:cls ~cache:info.Api.cache
        ~explain:info.Api.explain;
      result
    | exception exn ->
      (* The span must not be lost to the deputy barrier: record the
         failure here, then let the barrier shape the reply. *)
      let exec_dur = Metrics.now () -. t1 in
      record_span tr inst ~call:call_str ~deputy ~start ~queue_wait
        ~check_dur ~exec_dur ~decision:Trace.Failed ~cache:info.Api.cache
        ~explain:(Some ("exception: " ^ Printexc.to_string exn));
      raise exn)

(* Transactions trace as one span covering the whole group. *)
let checked_txn_traced t inst calls tr ~deputy ~queue_wait =
  let call_str = Printf.sprintf "txn(%d calls)" (List.length calls) in
  let t0 = Metrics.now () in
  let start = t0 -. queue_wait in
  match checked_txn t inst calls with
  | r ->
    let dur = Metrics.now () -. t0 in
    let decision, explain =
      match r with
      | Ok _ -> (Trace.Allowed, None)
      | Error (i, why) ->
        (Trace.Denied, Some (Printf.sprintf "call %d of group: %s" i why))
    in
    record_span tr inst ~call:call_str ~deputy ~start ~queue_wait
      ~check_dur:dur ~exec_dur:0. ~decision ~cache:Api.Uncached ~explain;
    r
  | exception exn ->
    let dur = Metrics.now () -. t0 in
    record_span tr inst ~call:call_str ~deputy ~start ~queue_wait
      ~check_dur:dur ~exec_dur:0. ~decision:Trace.Failed ~cache:Api.Uncached
      ~explain:(Some ("exception: " ^ Printexc.to_string exn));
    raise exn

(* Contexts ---------------------------------------------------------------- *)

(* Wait for a KSD reply.  Without a configured deadline this blocks
   until the deputy barrier fills the ivar; with one, an app thread can
   never hang on a request a dying deputy dropped — it surfaces
   [on_deadline] (an [Api.Failed "deadline"]-shaped reply) instead. *)
let await_reply t ivar ~on_deadline =
  match t.config.call_deadline with
  | None -> Channel.Ivar.read ivar
  | Some d -> (
    match Channel.Ivar.read_timeout ivar d with
    | Some r -> r
    | None ->
      Atomic.incr t.faults.deadline_expiries;
      (match t.config.health with
      | Some h -> Health.deadline h
      | None -> ());
      on_deadline)

(* The trace sampler runs at the call site (app thread), before any
   timestamping, so sampled-out calls pay one mutex-protected counter
   bump and nothing else. *)
let trace_enq t =
  match t.config.trace with
  | Some tr when Trace.sampled tr -> Some (Metrics.now ())
  | _ -> None

let make_ctx t inst : App.ctx =
  match t.mode with
  | Monolithic ->
    { App.app_name = inst.app.App.name;
      call =
        (fun call ->
          match t.config.trace with
          | Some tr when Trace.sampled tr ->
            (* Inline execution: no deputy, no queue wait. *)
            checked_exec_traced t inst call tr ~deputy:(-1) ~queue_wait:0.
          | _ -> checked_exec t inst call);
      transaction =
        (fun calls ->
          match t.config.trace with
          | Some tr when Trace.sampled tr ->
            checked_txn_traced t inst calls tr ~deputy:(-1) ~queue_wait:0.
          | _ -> checked_txn t inst calls) }
  | Isolated _ | Isolated_domains _ ->
    { App.app_name = inst.app.App.name;
      call =
        (fun call ->
          let ivar = Channel.Ivar.create () in
          match Channel.push t.reqs (Call (inst, call, ivar, trace_enq t)) with
          | () ->
            (match t.config.health with
            | Some h -> Health.queue_depth h (Channel.length t.reqs)
            | None -> ());
            await_reply t ivar ~on_deadline:(Api.Failed "deadline")
          | exception Channel.Closed -> Api.Failed "runtime shut down"
          | exception Channel.Full ->
            Atomic.incr t.faults.backpressure_rejections;
            Api.Failed "backpressure: request queue full");
      transaction =
        (fun calls ->
          let ivar = Channel.Ivar.create () in
          match Channel.push t.reqs (Txn (inst, calls, ivar, trace_enq t)) with
          | () ->
            (match t.config.health with
            | Some h -> Health.queue_depth h (Channel.length t.reqs)
            | None -> ());
            await_reply t ivar ~on_deadline:(Error (-1, "deadline"))
          | exception Channel.Closed -> Error (-1, "runtime shut down")
          | exception Channel.Full ->
            Atomic.incr t.faults.backpressure_rejections;
            Error (-1, "backpressure: request queue full")) }

let ctx_of inst =
  match inst.ctx with
  | Some c -> c
  | None -> invalid_arg "runtime: instance not started"

(* Event dispatch ---------------------------------------------------------- *)

(** Apply the reference-monitor checks that precede event delivery.
    Returns [None] when delivery is suppressed, or the (possibly
    payload-stripped) event to deliver.  [?pre] supplies decisions a
    batched checker already made for this (instance, event) — the
    [Receive_event] verdict and the [Read_payload_access] verdict —
    so burst injection ({!feed_burst}) skips the per-event checker
    round-trips while keeping the audit/suppression behaviour here. *)
let vet_event ?pre t inst ev : Events.t option =
  let kind = Events.kind ev in
  (* These checks run in the *dispatcher's* thread, outside the deputy
     barrier, so a raising checker is converted to a denial here:
     fail-closed (the event is suppressed, audited), and the dispatch
     loop stays alive.  One [resolve] covers both delivery checks, so
     the Receive_event and Read_payload_access verdicts come from the
     same epoch; a raising resolution fail-closes the delivery. *)
  let ck = try resolve inst.checker with _ -> Api.deny_all in
  let checked call =
    try ck.Api.check call
    with exn -> Api.Deny ("checker fault: " ^ Printexc.to_string exn)
  in
  let receive_verdict =
    match pre with
    | Some (d, _) -> d
    | None -> checked (Api.Receive_event kind)
  in
  match receive_verdict with
  | Api.Deny why ->
    incr_counter t (fun c -> c.events_suppressed <- c.events_suppressed + 1);
    audit_denial t inst (Api.Receive_event kind) why;
    None
  | Api.Allow -> (
    match ev with
    | Events.Packet_in pi -> (
      let payload_verdict =
        match pre with
        | Some (_, d) -> d
        | None -> checked Api.Read_payload_access
      in
      match payload_verdict with
      | Api.Allow -> Some ev
      | Api.Deny _ ->
        (* pkt_in_event without read_payload: deliver headers only. *)
        Some
          (Events.Packet_in
             { pi with packet = { pi.packet with Packet.payload = "" } }))
    | _ -> Some ev)

let handle_in_instance t inst ev =
  incr_counter t (fun c -> c.events_delivered <- c.events_delivered + 1);
  try inst.app.App.handle (ctx_of inst) ev
  with exn ->
    (* A crashing app must not take the runtime down: the isolation
       property.  Record it as an error-class audit entry. *)
    Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
      ~action:"handler-exception" ~allowed:true
      ~detail:(Printexc.to_string exn)

let dispatch_one ?pre t inst ev latch =
  match vet_event ?pre t inst ev with
  | None -> (match latch with Some l -> Channel.Latch.count_down l | None -> ())
  | Some ev -> (
    match t.mode with
    | Monolithic ->
      handle_in_instance t inst ev;
      (match latch with Some l -> Channel.Latch.count_down l | None -> ())
    | Isolated _ | Isolated_domains _ -> (
      (* The increment precedes the push, so a failed push must undo it
         or [drain] waits forever on a delivery that never happened.
         [Closed] is the shutdown race (events injected after [close]);
         [Full] is a bounded [Reject]-policy queue shedding load. *)
      inflight_incr t;
      match Channel.push inst.ev_chan (Deliver (ev, latch)) with
      | () -> ()
      | exception (Channel.Closed | Channel.Full as e) ->
        (match e with
        | Channel.Full -> Atomic.incr t.faults.backpressure_rejections
        | _ -> ());
        inflight_decr t;
        (match latch with Some l -> Channel.Latch.count_down l | None -> ())))

let subscribers t ev =
  let kind = Events.kind ev in
  List.filter (fun inst -> App.subscribes inst.app kind) t.instances

(** Tell every checker about state changes it must track (e.g. flow
    expirations feeding ownership stores). *)
let notify_observers t ev =
  match ev with
  | Events.Flow_removed { dpid; match_; cookie } ->
    List.iter
      (fun inst ->
        try inst.checker.Api.observe (Api.Flow_expired { dpid; match_; cookie })
        with exn ->
          (* An observer fault must not kill the dispatcher; the skipped
             notification is recorded so stale-budget anomalies can be
             traced back to it. *)
          Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
            ~action:"observer-exception" ~allowed:true
            ~detail:(Printexc.to_string exn))
      t.instances
  | _ -> ()

(** Dispatch all events the kernel queued as side effects of API calls,
    cascading until quiescent. *)
let rec process_pending t =
  Mutex.lock t.kmutex;
  let evs = Kernel.take_pending t.kernel in
  Mutex.unlock t.kmutex;
  match evs with
  | [] -> ()
  | evs ->
    List.iter
      (fun ev ->
        notify_observers t ev;
        List.iter (fun inst -> dispatch_one t inst ev None) (subscribers t ev))
      evs;
    (* In monolithic mode handlers ran inline and may have queued more. *)
    if t.mode = Monolithic then process_pending t

(** Fire-and-forget event injection (throughput mode). *)
let feed t ev =
  notify_observers t ev;
  List.iter (fun inst -> dispatch_one t inst ev None) (subscribers t ev);
  process_pending t

(** Burst injection: like [List.iter (feed t)] — same delivery order,
    same audit and suppression behaviour — but the pre-delivery
    permission checks ([Receive_event] per event, [Read_payload_access]
    for packet-ins) of every subscriber with a batched checker are
    decided in one [check_batch] call per subscriber up front, which is
    where packet-in storms spend their checking budget.  Subscribers
    without a batch entry point (or whose batch call raises) fall back
    to the per-event path unchanged.  Sound because the event-delivery
    checks are stateless — their verdicts don't depend on interleaved
    approvals — and a raising batched checker degrades to the
    fail-closed per-event handling in [vet_event]. *)
let feed_burst t (evs : Events.t list) =
  match evs with
  | [] -> ()
  | [ ev ] -> feed t ev
  | evs ->
    let evs = Array.of_list evs in
    let n = Array.length evs in
    (* One boxed call per event kind, so a batched checker's
       adjacent-repeat coalescing sees physically equal calls. *)
    let recv_calls =
      let by_kind = Hashtbl.create 8 in
      Array.map
        (fun ev ->
          let k = Events.kind ev in
          match Hashtbl.find_opt by_kind k with
          | Some call -> call
          | None ->
            let call = Api.Receive_event k in
            Hashtbl.add by_kind k call;
            call)
        evs
    in
    let pre_for inst =
      (* Resolve once per (subscriber, burst): all pre-decisions of the
         burst come from one epoch; a raising resolution falls back to
         the per-event path, which fail-closes each event. *)
      match
        try (resolve inst.checker).Api.check_batch with _ -> None
      with
      | None -> None
      | Some batch -> (
        let idxs = ref [] in
        for i = n - 1 downto 0 do
          if App.subscribes inst.app (Events.kind evs.(i)) then
            idxs := i :: !idxs
        done;
        match Array.of_list !idxs with
        | [||] -> None
        | idxs -> (
          (* First half: Receive_event per subscribed event; second
             half: the (constant) payload-access call, coalesced by the
             batch into essentially one evaluation. *)
          let m = Array.length idxs in
          let calls = Array.make (2 * m) Api.Read_payload_access in
          Array.iteri (fun j i -> calls.(j) <- recv_calls.(i)) idxs;
          match batch calls with
          | exception _ ->
            (* Fall back to the per-event path, which fail-closes each
               event individually and keeps the audit trail. *)
            None
          | ds when Array.length ds <> 2 * m ->
            None (* malformed checker: per-event path decides *)
          | ds ->
            let map = Array.make n None in
            Array.iteri (fun j i -> map.(i) <- Some (ds.(j), ds.(m + j))) idxs;
            Some map))
    in
    let pres = List.map (fun inst -> (inst, pre_for inst)) t.instances in
    Array.iteri
      (fun i ev ->
        notify_observers t ev;
        List.iter
          (fun (inst, map) ->
            if App.subscribes inst.app (Events.kind ev) then
              let pre = match map with None -> None | Some m -> m.(i) in
              dispatch_one ?pre t inst ev None)
          pres;
        process_pending t)
      evs

(** Inject [ev] and block until every subscribed app has finished
    handling it, including cascaded events (latency mode). *)
let rec feed_sync t ev =
  notify_observers t ev;
  let subs = subscribers t ev in
  (match subs with
  | [] -> ()
  | _ ->
    let latch = Channel.Latch.create (List.length subs) in
    List.iter (fun inst -> dispatch_one t inst ev (Some latch)) subs;
    Channel.Latch.wait latch);
  process_pending_sync t

and process_pending_sync t =
  Mutex.lock t.kmutex;
  let evs = Kernel.take_pending t.kernel in
  Mutex.unlock t.kmutex;
  List.iter (feed_sync t) evs

(** Wait until all asynchronously dispatched work has completed,
    including cascades. *)
let rec drain t =
  wait_inflight_zero t;
  Mutex.lock t.kmutex;
  let quiescent = t.kernel.Kernel.pending = [] in
  Mutex.unlock t.kmutex;
  if not quiescent then begin
    process_pending t;
    drain t
  end

(* Threads ----------------------------------------------------------------- *)

let app_thread t inst () =
  let rec loop () =
    match Channel.pop inst.ev_chan with
    | None -> ()
    | Some (Deliver (ev, latch)) ->
      handle_in_instance t inst ev;
      (match latch with Some l -> Channel.Latch.count_down l | None -> ());
      inflight_decr t;
      loop ()
  in
  loop ()

(* Kernel Service Deputies, supervised.

   Two layers of protection (docs/RUNTIME.md):

   - the per-request *exception barrier*: any raise while serving a
     request — inside the checker, the kernel, a rewrite/vet hook —
     becomes an [Api.Failed] reply, the reply ivar is ALWAYS filled,
     and the fault lands in the audit log ("ksd-exception") for
     forensics.  A misbehaving call fails itself, never the deputy.

   - the *supervisor*: a fault that escapes the barrier (it fires
     between popping a request and entering the barrier — the window
     the [Deputy] fault-injection site targets) would previously kill
     the deputy silently.  Now the crash is audited ("deputy-crash")
     and the deputy restarts, up to [config.restart_budget] times, then
     retires with a final audit entry.  A request lost in that window
     is exactly what [config.call_deadline] exists for. *)

let ksd_failure t inst exn =
  Atomic.incr t.faults.ksd_failures;
  (match t.config.health with
  | Some h -> Health.fault h
  | None -> ());
  Sandbox.record_audit (sandbox t) ~app:inst.app.App.name
    ~action:"ksd-exception" ~allowed:true ~detail:(Printexc.to_string exn)

let serve_request t ~deputy = function
  | Call (inst, call, ivar, enq) ->
    let r =
      try
        match (t.config.trace, enq) with
        | Some tr, Some enq_at ->
          let queue_wait = Metrics.now () -. enq_at in
          checked_exec_traced t inst call tr ~deputy ~queue_wait
        | _ -> checked_exec t inst call
      with exn ->
        ksd_failure t inst exn;
        Api.Failed (Printexc.to_string exn)
    in
    Channel.Ivar.fill ivar r
  | Txn (inst, calls, ivar, enq) ->
    let r =
      try
        match (t.config.trace, enq) with
        | Some tr, Some enq_at ->
          let queue_wait = Metrics.now () -. enq_at in
          checked_txn_traced t inst calls tr ~deputy ~queue_wait
        | _ -> checked_txn t inst calls
      with exn ->
        ksd_failure t inst exn;
        Error (-1, Printexc.to_string exn)
    in
    Channel.Ivar.fill ivar r

let ksd_thread t deputy () =
  let rec loop () =
    match Channel.pop t.reqs with
    | None -> ()
    | Some req ->
      Faults.point Faults.Deputy;
      serve_request t ~deputy req;
      loop ()
  in
  let rec supervise budget =
    match loop () with
    | () -> () (* request channel closed: clean shutdown *)
    | exception exn ->
      Sandbox.record_audit (sandbox t) ~app:"<ksd>" ~action:"deputy-crash"
        ~allowed:true ~detail:(Printexc.to_string exn);
      if budget > 0 then begin
        Atomic.incr t.faults.ksd_restarts;
        supervise (budget - 1)
      end
      else
        Sandbox.record_audit (sandbox t) ~app:"<ksd>" ~action:"deputy-retired"
          ~allowed:true ~detail:"restart budget exhausted"
  in
  supervise t.config.restart_budget

(* Lifecycle --------------------------------------------------------------- *)

type load_check = Skip_load_check | Warn_at_load | Reject_at_load

(** Load-time access control (§VIII-B): tokens backing the app's
    declared capabilities and event subscriptions must be granted at
    all, or the app is flagged (or refused) before it ever runs —
    "no runtime permission checking is needed in case the app does not
    have the required permission tokens at all". *)
let load_violations (app : App.t) (checker : Api.checker) : string list =
  let checker = resolve checker in
  let missing_caps =
    List.filter_map
      (fun cap ->
        if checker.Api.granted cap then None
        else Some ("capability " ^ Api.capability_to_string cap))
      app.App.uses
  in
  let missing_events =
    List.filter_map
      (fun kind ->
        match kind with
        | Api.E_app _ -> None (* inter-app channels need no token *)
        | _ -> (
          match checker.Api.check (Api.Receive_event kind) with
          | Api.Deny _ ->
            Some ("event subscription " ^ Api.event_kind_to_string kind)
          | Api.Allow -> None))
      app.App.subscriptions
  in
  missing_caps @ missing_events

(** Gauge names this runtime registered, for unregistration at
    shutdown.  Names are stable per app name, and registration
    replaces, so sequential runtimes (the benchmark pattern) do not
    grow the registry. *)
let gauge_names t =
  "queue:ksd-reqs"
  :: List.map (fun inst -> "queue:ev:" ^ inst.app.App.name) t.instances

let register_queue_gauges t =
  Metrics.register_gauge "queue:ksd-reqs" (fun () ->
      { Metrics.depth = Channel.length t.reqs;
        hwm = Channel.high_water t.reqs });
  List.iter
    (fun inst ->
      Metrics.register_gauge ("queue:ev:" ^ inst.app.App.name) (fun () ->
          { Metrics.depth = Channel.length inst.ev_chan;
            hwm = Channel.high_water inst.ev_chan }))
    t.instances

(** [create ~mode kernel apps] builds a runtime over [kernel] hosting
    [apps], each paired with its permission checker, then runs every
    app's [init] through its own context.  [load_check] selects the
    load-time access-control behaviour (default: skip); [config] the
    fault-tolerance knobs (default: unbounded queues, no deadline,
    restart budget 8 — the seed semantics, plus supervision). *)
let create ?(load_check = Skip_load_check) ?(config = default_config) ~mode
    kernel (apps : (App.t * Api.checker) list) : t =
  let counters =
    { calls = 0; denials = 0; events_delivered = 0; events_suppressed = 0;
      cmutex = Mutex.create () }
  in
  let t =
    { kernel; kmutex = Mutex.create (); mode; config; instances = [];
      reqs = Channel.create ?capacity:config.req_capacity ();
      ksd_pool = []; ksd_domains = [];
      inflight_mutex = Mutex.create ();
      inflight_zero = Condition.create (); inflight = 0; counters;
      faults =
        { ksd_failures = Atomic.make 0; ksd_restarts = Atomic.make 0;
          deadline_expiries = Atomic.make 0;
          backpressure_rejections = Atomic.make 0 };
      rejected = [] }
  in
  let apps =
    match load_check with
    | Skip_load_check -> apps
    | Warn_at_load | Reject_at_load ->
      List.filter
        (fun ((app : App.t), checker) ->
          match load_violations app checker with
          | [] -> true
          | violations ->
            let reason = String.concat ", " violations in
            Sandbox.record_audit kernel.Kernel.sandbox ~app:app.App.name
              ~action:"load-time-check" ~allowed:(load_check = Warn_at_load)
              ~detail:reason;
            if load_check = Reject_at_load then begin
              t.rejected <- (app.App.name, reason) :: t.rejected;
              false
            end
            else true)
        apps
  in
  let instances =
    List.mapi
      (fun i (app, checker) ->
        { app; checker; cookie = i + 1;
          ev_chan =
            Channel.create ?capacity:config.ev_capacity
              ~policy:config.ev_policy ();
          thread = None; ctx = None })
      apps
  in
  t.instances <- instances;
  List.iter (fun inst -> inst.ctx <- Some (make_ctx t inst)) instances;
  (match mode with
  | Monolithic -> ()
  | Isolated { ksd_threads } ->
    t.ksd_pool <-
      List.init (max 1 ksd_threads) (fun i ->
          Thread.create (ksd_thread t i) ());
    List.iter
      (fun inst -> inst.thread <- Some (Thread.create (app_thread t inst) ()))
      instances;
    register_queue_gauges t
  | Isolated_domains { ksd_domains } ->
    t.ksd_domains <-
      List.init (max 1 ksd_domains) (fun i -> Domain.spawn (ksd_thread t i));
    List.iter
      (fun inst -> inst.thread <- Some (Thread.create (app_thread t inst) ()))
      instances;
    register_queue_gauges t);
  (* App initialisation goes through the same mediated contexts. *)
  List.iter (fun inst -> inst.app.App.init (ctx_of inst)) instances;
  process_pending t;
  t

let shutdown t =
  (match t.mode with
  | Monolithic -> ()
  | Isolated _ | Isolated_domains _ ->
    (* Event queues first (closing wakes pushers blocked on a full
       queue as well as the app threads); the request channel only once
       the app threads — the request producers — are joined, so no
       in-flight call loses its deputy. *)
    List.iter (fun inst -> Channel.close inst.ev_chan) t.instances;
    List.iter
      (fun inst -> match inst.thread with Some th -> Thread.join th | None -> ())
      t.instances;
    Channel.close t.reqs;
    List.iter Thread.join t.ksd_pool;
    List.iter Domain.join t.ksd_domains;
    List.iter Metrics.unregister_gauge (gauge_names t))

(** The runtime's observability report: reference-monitor counters,
    kernel execution volume, and every registered cache's hit/miss
    counters (engines register their decision caches, [lib/core]
    registers the normal-form and inclusion memos). *)
let cache_report (_ : t) = Metrics.cache_report ()

let pp_fault_report ppf r =
  Fmt.pf ppf
    "faults: ksd-failures=%d ksd-restarts=%d deadlines=%d \
     backpressure-rejections=%d@."
    r.failures r.restarts r.deadlines r.rejections

(** The runtime's slice of the unified telemetry snapshot
    (docs/OBSERVABILITY.md): reference-monitor and fault counters from
    this runtime, histograms/caches/gauges from the process-wide
    {!Metrics} registries, span accounting from the configured trace
    store (if any). *)
let telemetry t : Telemetry.snapshot =
  let calls, denials, delivered, suppressed = stats t in
  let fr = fault_report t in
  Telemetry.snapshot
    ~counters:
      [ ("calls", calls); ("denials", denials);
        ("events_delivered", delivered); ("events_suppressed", suppressed);
        ("kernel_executions", Kernel.exec_count t.kernel);
        ("ksd_failures", fr.failures); ("ksd_restarts", fr.restarts);
        ("deadline_expiries", fr.deadlines);
        ("backpressure_rejections", fr.rejections) ]
    ?trace:t.config.trace ?health:t.config.health ()

let pp_report ppf t = Telemetry.pp ppf (telemetry t)

(** The retained spans of the configured trace store, oldest first
    (empty without one). *)
let spans t =
  match t.config.trace with None -> [] | Some tr -> Trace.spans tr

let instance_ctx t name =
  match List.find_opt (fun i -> i.app.App.name = name) t.instances with
  | Some inst -> ctx_of inst
  | None -> invalid_arg (Printf.sprintf "runtime: no app %S" name)
