(* End-to-end call tracing: a bounded ring buffer of per-call spans.

   The enforcement story (§VI) and the forensics claim (§VII) both
   need to answer, per mediated API call, *why* it was allowed or
   denied and *where* its latency went.  A span ties the stages of one
   call together: queue wait between the app thread and the deputy
   pool, permission-check duration (with the decision cache's verdict
   on how it was served), kernel execution, and the decision itself
   with its explanation.

   The store is deliberately dumb and bounded: a fixed-capacity ring
   under a mutex, overwriting oldest-first, with deterministic 1-in-N
   sampling derived from a configured ratio.  Recording is a handful
   of field writes — cheap enough to leave on in production at a
   sampled rate (docs/OBSERVABILITY.md quantifies the overhead), and
   memory is capacity-bounded no matter how long the process runs. *)

type decision_class = Allowed | Denied | Failed

let decision_class_to_string = function
  | Allowed -> "allowed"
  | Denied -> "denied"
  | Failed -> "failed"

type span = {
  seq : int;  (** Monotone per-store sequence number of recorded spans. *)
  app : string;
  call : string;  (** Call-kind label ({!Api.call_kind}), e.g. ["install_flow"]. *)
  deputy : int;  (** Serving deputy index; [-1] = inline (monolithic). *)
  start : float;
      (** {!Metrics.now} at the beginning of the call (enqueue time for
          queued calls) — lets exporters place spans on a timeline. *)
  queue_wait : float;  (** Seconds between enqueue and deputy pop. *)
  check_dur : float;  (** Permission-check duration, seconds. *)
  exec_dur : float;  (** Kernel-execution (+ vetting) duration, seconds. *)
  total : float;  (** Queue wait + check + exec, seconds. *)
  decision : decision_class;
  cache : Api.cache_outcome;
  explain : string option;
      (** Token/clause responsible for the decision, when the checker
          can explain itself (always populated for engine denials). *)
}

(* Lifecycle transaction spans (docs/CHURN.md): one parent span per
   Market request, with child stage spans for each pipeline stage the
   transaction entered (vet, reconcile, lint, verify, compile,
   publish, and the publish undo on a torn rollback). *)

type stage_span = {
  stage : string;
  offset : float;  (** Seconds from the transaction start. *)
  dur : float;  (** Stage duration, seconds. *)
}

type txn_verdict =
  | Txn_committed of { delta : bool; republished : string list }
  | Txn_rolled_back of { stage : string; reason : string }

type txn_span = {
  tseq : int;  (** Monotone per-store sequence number of recorded txns. *)
  id : int;  (** The market's transaction id (ledger key). *)
  kind : string;  (** ["install"] / ["upgrade"] / ["revoke"]. *)
  txn_app : string;
  verdict : txn_verdict;
  epoch_before : int;  (** Global epoch when the transaction started. *)
  epoch_after : int;  (** Epoch after: [epoch_before + 1] on commit, unchanged on rollback. *)
  txn_start : float;  (** {!Metrics.now} at worker pickup. *)
  txn_total : float;  (** Whole-transaction duration, seconds. *)
  stages : stage_span list;  (** Execution order. *)
}

let txn_committed (t : txn_span) =
  match t.verdict with Txn_committed _ -> true | Txn_rolled_back _ -> false

type t = {
  ring : span option array;
  mutable recorded : int;  (** Spans written into the ring, ever. *)
  seen : int Atomic.t;  (** Calls offered, including sampled-out ones. *)
  stride : int;  (** Record every [stride]-th offered call. *)
  txn_ring : txn_span option array;
      (** Lifecycle transactions, unsampled: churn is orders of
          magnitude rarer than mediated calls, so every transaction is
          kept (bounded by the ring). *)
  mutable txn_recorded : int;
  mutex : Mutex.t;
}

type stats = {
  capacity : int;
  seen : int;
  recorded : int;
  sampled_out : int;
  dropped : int;  (** Recorded spans overwritten by the ring. *)
  stored : int;  (** Spans currently readable. *)
  sampling : float;  (** Effective ratio: [1 / stride]. *)
  txn_capacity : int;
  txn_recorded : int;  (** Transaction spans written, ever. *)
  txn_dropped : int;  (** Transaction spans overwritten by the ring. *)
  txn_stored : int;  (** Transaction spans currently readable. *)
}

let default_capacity = 4096
let default_txn_capacity = 1024

(** [create ()] — a span store.  [capacity] bounds memory (default
    4096 spans); [sampling] in (0, 1] is the fraction of calls to
    record (default 1.0 = every call), realised as a deterministic
    1-in-[round (1/sampling)] stride so the recorded subset is
    reproducible.  [txn_capacity] (default 1024) bounds the separate
    lifecycle-transaction ring, which is never sampled. *)
let create ?(capacity = default_capacity) ?(sampling = 1.0)
    ?(txn_capacity = default_txn_capacity) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  if not (sampling > 0. && sampling <= 1.) then
    invalid_arg "Trace.create: sampling must be in (0, 1]";
  if txn_capacity <= 0 then
    invalid_arg "Trace.create: txn_capacity must be > 0";
  { ring = Array.make capacity None;
    recorded = 0;
    seen = Atomic.make 0;
    stride = Stdlib.max 1 (int_of_float (Float.round (1. /. sampling)));
    txn_ring = Array.make txn_capacity None;
    txn_recorded = 0;
    mutex = Mutex.create () }

(** Offer one call: bumps the seen counter and says whether this call
    should be recorded.  Call it once per mediated call, *before*
    taking any timestamps, so sampled-out calls skip the measurement
    cost entirely.  Lock-free — this runs on every call even when
    almost all of them are sampled out. *)
let sampled (t : t) = Atomic.fetch_and_add t.seen 1 mod t.stride = 0

(** Record a span (the [seq] field of the argument is ignored and
    reassigned under the store's lock). *)
let record t (s : span) =
  Mutex.lock t.mutex;
  let seq = t.recorded in
  t.ring.(seq mod Array.length t.ring) <- Some { s with seq };
  t.recorded <- t.recorded + 1;
  Mutex.unlock t.mutex

(** Convenience over {!record}. *)
let span t ~app ~call ~deputy ~start ~queue_wait ~check_dur ~exec_dur
    ~decision ~cache ~explain =
  record t
    { seq = 0; app; call; deputy; start; queue_wait; check_dur; exec_dur;
      total = queue_wait +. check_dur +. exec_dur; decision; cache; explain }

(** Record a lifecycle-transaction span (the [tseq] field of the
    argument is ignored and reassigned under the store's lock).
    Transactions are never sampled out. *)
let record_txn t (s : txn_span) =
  Mutex.lock t.mutex;
  let tseq = t.txn_recorded in
  t.txn_ring.(tseq mod Array.length t.txn_ring) <- Some { s with tseq };
  t.txn_recorded <- t.txn_recorded + 1;
  Mutex.unlock t.mutex

(** The retained spans, oldest first. *)
let spans t =
  Mutex.lock t.mutex;
  let cap = Array.length t.ring in
  let stored = Stdlib.min t.recorded cap in
  let first = t.recorded - stored in
  let out =
    List.init stored (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some s -> s
        | None -> assert false (* slots below [recorded] are filled *))
  in
  Mutex.unlock t.mutex;
  out

(** The retained transaction spans, oldest first. *)
let txn_spans t =
  Mutex.lock t.mutex;
  let cap = Array.length t.txn_ring in
  let stored = Stdlib.min t.txn_recorded cap in
  let first = t.txn_recorded - stored in
  let out =
    List.init stored (fun i ->
        match t.txn_ring.((first + i) mod cap) with
        | Some s -> s
        | None -> assert false)
  in
  Mutex.unlock t.mutex;
  out

let stats t : stats =
  Mutex.lock t.mutex;
  let cap = Array.length t.ring in
  let stored = Stdlib.min t.recorded cap in
  let seen = Atomic.get t.seen in
  let txn_cap = Array.length t.txn_ring in
  let txn_stored = Stdlib.min t.txn_recorded txn_cap in
  let s =
    { capacity = cap;
      seen;
      recorded = t.recorded;
      sampled_out = seen - ((seen + t.stride - 1) / t.stride);
      dropped = t.recorded - stored;
      stored;
      sampling = 1. /. float_of_int t.stride;
      txn_capacity = txn_cap;
      txn_recorded = t.txn_recorded;
      txn_dropped = t.txn_recorded - txn_stored;
      txn_stored }
  in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.recorded <- 0;
  Atomic.set t.seen 0;
  Array.fill t.txn_ring 0 (Array.length t.txn_ring) None;
  t.txn_recorded <- 0;
  Mutex.unlock t.mutex

let pp_span ppf s =
  Fmt.pf ppf
    "@[<h>#%d %s %s [%s] deputy=%d wait=%.1fus check=%.1fus exec=%.1fus \
     total=%.1fus cache=%s%a@]"
    s.seq s.app s.call
    (decision_class_to_string s.decision)
    s.deputy (s.queue_wait *. 1e6) (s.check_dur *. 1e6) (s.exec_dur *. 1e6)
    (s.total *. 1e6)
    (Api.cache_outcome_to_string s.cache)
    Fmt.(option (any " — " ++ string))
    s.explain

let pp_txn_span ppf (s : txn_span) =
  let verdict ppf = function
    | Txn_committed { delta; republished } ->
      Fmt.pf ppf "committed (%s, %d republished)"
        (if delta then "delta" else "full")
        (List.length republished)
    | Txn_rolled_back { stage; reason } ->
      Fmt.pf ppf "rolled back at %s: %s" stage reason
  in
  Fmt.pf ppf "@[<h>txn#%d %s %s epoch %d->%d total=%.1fus %a [%a]@]" s.id
    s.kind s.txn_app s.epoch_before s.epoch_after (s.txn_total *. 1e6)
    verdict s.verdict
    Fmt.(
      list ~sep:(any " ")
        (fun ppf (st : stage_span) ->
          Fmt.pf ppf "%s=%.1fus" st.stage (st.dur *. 1e6)))
    s.stages

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "trace: capacity=%d stored=%d recorded=%d dropped=%d seen=%d \
     sampled-out=%d sampling=%.3f txns: capacity=%d stored=%d recorded=%d \
     dropped=%d"
    s.capacity s.stored s.recorded s.dropped s.seen s.sampled_out s.sampling
    s.txn_capacity s.txn_stored s.txn_recorded s.txn_dropped
