(* End-to-end call tracing: a bounded ring buffer of per-call spans.

   The enforcement story (§VI) and the forensics claim (§VII) both
   need to answer, per mediated API call, *why* it was allowed or
   denied and *where* its latency went.  A span ties the stages of one
   call together: queue wait between the app thread and the deputy
   pool, permission-check duration (with the decision cache's verdict
   on how it was served), kernel execution, and the decision itself
   with its explanation.

   The store is deliberately dumb and bounded: a fixed-capacity ring
   under a mutex, overwriting oldest-first, with deterministic 1-in-N
   sampling derived from a configured ratio.  Recording is a handful
   of field writes — cheap enough to leave on in production at a
   sampled rate (docs/OBSERVABILITY.md quantifies the overhead), and
   memory is capacity-bounded no matter how long the process runs. *)

type decision_class = Allowed | Denied | Failed

let decision_class_to_string = function
  | Allowed -> "allowed"
  | Denied -> "denied"
  | Failed -> "failed"

type span = {
  seq : int;  (** Monotone per-store sequence number of recorded spans. *)
  app : string;
  call : string;  (** Call-kind label ({!Api.call_kind}), e.g. ["install_flow"]. *)
  deputy : int;  (** Serving deputy index; [-1] = inline (monolithic). *)
  queue_wait : float;  (** Seconds between enqueue and deputy pop. *)
  check_dur : float;  (** Permission-check duration, seconds. *)
  exec_dur : float;  (** Kernel-execution (+ vetting) duration, seconds. *)
  total : float;  (** Queue wait + check + exec, seconds. *)
  decision : decision_class;
  cache : Api.cache_outcome;
  explain : string option;
      (** Token/clause responsible for the decision, when the checker
          can explain itself (always populated for engine denials). *)
}

type t = {
  ring : span option array;
  mutable recorded : int;  (** Spans written into the ring, ever. *)
  seen : int Atomic.t;  (** Calls offered, including sampled-out ones. *)
  stride : int;  (** Record every [stride]-th offered call. *)
  mutex : Mutex.t;
}

type stats = {
  capacity : int;
  seen : int;
  recorded : int;
  sampled_out : int;
  dropped : int;  (** Recorded spans overwritten by the ring. *)
  stored : int;  (** Spans currently readable. *)
  sampling : float;  (** Effective ratio: [1 / stride]. *)
}

let default_capacity = 4096

(** [create ()] — a span store.  [capacity] bounds memory (default
    4096 spans); [sampling] in (0, 1] is the fraction of calls to
    record (default 1.0 = every call), realised as a deterministic
    1-in-[round (1/sampling)] stride so the recorded subset is
    reproducible. *)
let create ?(capacity = default_capacity) ?(sampling = 1.0) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  if not (sampling > 0. && sampling <= 1.) then
    invalid_arg "Trace.create: sampling must be in (0, 1]";
  { ring = Array.make capacity None;
    recorded = 0;
    seen = Atomic.make 0;
    stride = Stdlib.max 1 (int_of_float (Float.round (1. /. sampling)));
    mutex = Mutex.create () }

(** Offer one call: bumps the seen counter and says whether this call
    should be recorded.  Call it once per mediated call, *before*
    taking any timestamps, so sampled-out calls skip the measurement
    cost entirely.  Lock-free — this runs on every call even when
    almost all of them are sampled out. *)
let sampled (t : t) = Atomic.fetch_and_add t.seen 1 mod t.stride = 0

(** Record a span (the [seq] field of the argument is ignored and
    reassigned under the store's lock). *)
let record t (s : span) =
  Mutex.lock t.mutex;
  let seq = t.recorded in
  t.ring.(seq mod Array.length t.ring) <- Some { s with seq };
  t.recorded <- t.recorded + 1;
  Mutex.unlock t.mutex

(** Convenience over {!record}. *)
let span t ~app ~call ~deputy ~queue_wait ~check_dur ~exec_dur ~decision
    ~cache ~explain =
  record t
    { seq = 0; app; call; deputy; queue_wait; check_dur; exec_dur;
      total = queue_wait +. check_dur +. exec_dur; decision; cache; explain }

(** The retained spans, oldest first. *)
let spans t =
  Mutex.lock t.mutex;
  let cap = Array.length t.ring in
  let stored = Stdlib.min t.recorded cap in
  let first = t.recorded - stored in
  let out =
    List.init stored (fun i ->
        match t.ring.((first + i) mod cap) with
        | Some s -> s
        | None -> assert false (* slots below [recorded] are filled *))
  in
  Mutex.unlock t.mutex;
  out

let stats t : stats =
  Mutex.lock t.mutex;
  let cap = Array.length t.ring in
  let stored = Stdlib.min t.recorded cap in
  let seen = Atomic.get t.seen in
  let s =
    { capacity = cap;
      seen;
      recorded = t.recorded;
      sampled_out = seen - ((seen + t.stride - 1) / t.stride);
      dropped = t.recorded - stored;
      stored;
      sampling = 1. /. float_of_int t.stride }
  in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.recorded <- 0;
  Atomic.set t.seen 0;
  Mutex.unlock t.mutex

let pp_span ppf s =
  Fmt.pf ppf
    "@[<h>#%d %s %s [%s] deputy=%d wait=%.1fus check=%.1fus exec=%.1fus \
     total=%.1fus cache=%s%a@]"
    s.seq s.app s.call
    (decision_class_to_string s.decision)
    s.deputy (s.queue_wait *. 1e6) (s.check_dur *. 1e6) (s.exec_dur *. 1e6)
    (s.total *. 1e6)
    (Api.cache_outcome_to_string s.cache)
    Fmt.(option (any " — " ++ string))
    s.explain

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "trace: capacity=%d stored=%d recorded=%d dropped=%d seen=%d \
     sampled-out=%d sampling=%.3f"
    s.capacity s.stored s.recorded s.dropped s.seen s.sampled_out s.sampling
