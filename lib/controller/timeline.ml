(* Chrome trace_event export of a span store (docs/OBSERVABILITY.md).

   Renders everything a {!Trace.t} retains — mediated-call spans and
   lifecycle-transaction spans — as one Chrome/Perfetto-loadable JSON
   document ([chrome://tracing], https://ui.perfetto.dev).  The two
   kinds live on separate tracks (thread lanes) of one process:

     tid 1  mediated calls      one "X" slice per call span
     tid 2  lifecycle txns      one "X" slice per transaction, with
                                its stage spans as nested child slices

   Nesting on tid 2 is by interval containment, which is exactly how
   the trace_event format expresses a hierarchy of synchronous "X"
   events on one thread: a stage slice starts at the transaction's
   start plus the stage offset and is covered by the parent's
   duration, so viewers draw it underneath the transaction slice.

   Timestamps are microseconds relative to the earliest span in the
   store (the format wants µs; normalizing keeps the numbers small and
   the export reproducible for same-shaped stores).  Events are sorted
   by timestamp, so per-track timestamps are monotone — some viewers
   want that, and tests can assert it. *)

module Json = Telemetry.Json

let call_track = 1.
let txn_track = 2.

(* µs relative to [base], rounded to whole microseconds so the export
   round-trips exactly through decimal JSON. *)
let us ~base t = Float.round ((t -. base) *. 1e6)

let dur_us d = Float.max 0. (Float.round (d *. 1e6))

let event ~name ~cat ~tid ~ts ~dur args : Json.t =
  Obj
    [ ("name", Str name); ("cat", Str cat); ("ph", Str "X");
      ("ts", Num ts); ("dur", Num dur); ("pid", Num 1.); ("tid", Num tid);
      ("args", Obj args) ]

let metadata ~name ~tid args : Json.t =
  Obj
    [ ("name", Str name); ("ph", Str "M"); ("pid", Num 1.); ("tid", Num tid);
      ("args", Obj args) ]

let call_event ~base (s : Trace.span) =
  let args =
    [ ("seq", Json.Num (float_of_int s.seq)); ("app", Json.Str s.app);
      ("decision", Json.Str (Trace.decision_class_to_string s.decision));
      ("cache", Json.Str (Api.cache_outcome_to_string s.cache));
      ("deputy", Json.Num (float_of_int s.deputy));
      ("queue_wait_us", Json.Num (dur_us s.queue_wait));
      ("check_us", Json.Num (dur_us s.check_dur));
      ("exec_us", Json.Num (dur_us s.exec_dur)) ]
    @ match s.explain with None -> [] | Some e -> [ ("explain", Json.Str e) ]
  in
  event ~name:s.call ~cat:"call" ~tid:call_track ~ts:(us ~base s.start)
    ~dur:(dur_us s.total) args

let txn_events ~base (t : Trace.txn_span) =
  let verdict_args =
    match t.verdict with
    | Trace.Txn_committed { delta; republished } ->
      [ ("verdict", Json.Str "committed"); ("delta", Json.Bool delta);
        ("republished", Json.Arr (List.map (fun a -> Json.Str a) republished))
      ]
    | Trace.Txn_rolled_back { stage; reason } ->
      [ ("verdict", Json.Str "rolled-back"); ("stage", Json.Str stage);
        ("reason", Json.Str reason) ]
  in
  let parent =
    event
      ~name:(t.kind ^ " " ^ t.txn_app)
      ~cat:"txn" ~tid:txn_track ~ts:(us ~base t.txn_start)
      ~dur:(dur_us t.txn_total)
      ([ ("id", Json.Num (float_of_int t.id));
         ("epoch_before", Json.Num (float_of_int t.epoch_before));
         ("epoch_after", Json.Num (float_of_int t.epoch_after)) ]
      @ verdict_args)
  in
  let children =
    List.map
      (fun (st : Trace.stage_span) ->
        event ~name:st.stage ~cat:"stage" ~tid:txn_track
          ~ts:(us ~base (t.txn_start +. st.offset))
          ~dur:(dur_us st.dur)
          [ ("txn", Json.Num (float_of_int t.id)) ])
      t.stages
  in
  parent :: children

let ts_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "ts" fields with Some (Json.Num n) -> n | _ -> 0.)
  | _ -> 0.

(** The trace_event document for everything [t] retains:
    [{"traceEvents": [...]}], with track-naming metadata first and the
    duration events sorted by timestamp.  An empty store exports just
    the metadata. *)
let to_json (t : Trace.t) : Json.t =
  let calls = Trace.spans t in
  let txns = Trace.txn_spans t in
  let base =
    List.fold_left
      (fun acc (s : Trace.span) -> Float.min acc s.start)
      (List.fold_left
         (fun acc (x : Trace.txn_span) -> Float.min acc x.txn_start)
         infinity txns)
      calls
  in
  let base = if Float.is_finite base then base else 0. in
  let events =
    List.map (call_event ~base) calls
    @ List.concat_map (txn_events ~base) txns
  in
  (* Stable, so a stage child at offset 0 stays after its parent. *)
  let events = List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b)) events in
  let meta =
    [ metadata ~name:"process_name" ~tid:0. [ ("name", Json.Str "sdnshield") ];
      metadata ~name:"thread_name" ~tid:call_track
        [ ("name", Json.Str "mediated calls") ];
      metadata ~name:"thread_name" ~tid:txn_track
        [ ("name", Json.Str "lifecycle transactions") ] ]
  in
  Json.Obj
    [ ("traceEvents", Json.Arr (meta @ events));
      ("displayTimeUnit", Json.Str "ms") ]

let to_string t = Json.to_string (to_json t)
